package scc

import (
	"math/rand"
	"testing"

	"incgraph/internal/graph"
)

func adj(g *graph.Graph) func(graph.NodeID, func(graph.NodeID) bool) {
	return func(v graph.NodeID, yield func(graph.NodeID) bool) {
		g.Successors(v, yield)
	}
}

func mkGraph(n int, edges [][2]int64) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i), "x")
	}
	for _, e := range edges {
		g.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	return g
}

func TestTarjanChainAndCycle(t *testing.T) {
	// 0→1→2 plus 2→0 makes one scc; 3→4 are singletons.
	g := mkGraph(5, [][2]int64{{0, 1}, {1, 2}, {2, 0}, {3, 4}})
	res := Run(g.NodesSorted(), adj(g))
	comps := res.CompsSorted(func(a, b graph.NodeID) bool { return a < b })
	if len(comps) != 3 {
		t.Fatalf("comps = %v", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 || comps[0][2] != 2 {
		t.Fatalf("cycle comp = %v", comps[0])
	}
}

func TestTarjanReverseTopologicalOrder(t *testing.T) {
	// DAG 0→1→2: Tarjan must emit sinks first.
	g := mkGraph(3, [][2]int64{{0, 1}, {1, 2}})
	res := Run(g.NodesSorted(), adj(g))
	if len(res.Comps) != 3 {
		t.Fatalf("comps = %v", res.Comps)
	}
	order := map[graph.NodeID]int{}
	for i, c := range res.Comps {
		order[c[0]] = i
	}
	g.Edges(func(e graph.Edge) bool {
		if order[e.From] <= order[e.To] {
			t.Fatalf("edge (%d,%d) violates reverse topological output", e.From, e.To)
		}
		return true
	})
}

func TestTarjanLowlinkCertificate(t *testing.T) {
	// In every multi-node scc, exactly the root has low == num.
	g := mkGraph(6, [][2]int64{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}})
	res := Run(g.NodesSorted(), adj(g))
	for _, comp := range res.Comps {
		if len(comp) == 1 {
			continue
		}
		roots := 0
		for _, v := range comp {
			if res.Low[v] == res.Num[v] {
				roots++
			}
		}
		if roots != 1 {
			t.Fatalf("comp %v has %d roots", comp, roots)
		}
	}
}

func TestEdgeClassification(t *testing.T) {
	// A DFS from 0 over 0→1→2 with 2→0 (frond), 0→2 (reverse frond is
	// possible only if 2 discovered via 1), and cross-links between
	// subtrees.
	g := mkGraph(5, [][2]int64{{0, 1}, {1, 2}, {2, 0}, {0, 2}, {0, 3}, {3, 4}, {4, 1}})
	res := Run([]graph.NodeID{0, 1, 2, 3, 4}, func(v graph.NodeID, yield func(graph.NodeID) bool) {
		for _, w := range g.SuccessorsSorted(v) { // deterministic DFS
			if !yield(w) {
				return
			}
		}
	})
	if tp := res.EdgeType(0, 1); tp != TreeArc {
		t.Fatalf("(0,1) = %v", tp)
	}
	if tp := res.EdgeType(1, 2); tp != TreeArc {
		t.Fatalf("(1,2) = %v", tp)
	}
	if tp := res.EdgeType(2, 0); tp != Frond {
		t.Fatalf("(2,0) = %v", tp)
	}
	if tp := res.EdgeType(0, 2); tp != ReverseFrond {
		t.Fatalf("(0,2) = %v", tp)
	}
	// 4 is in the subtree rooted at 3, discovered after 1's subtree; (4,1)
	// runs between subtrees.
	if tp := res.EdgeType(4, 1); tp != CrossLink {
		t.Fatalf("(4,1) = %v", tp)
	}
	for _, tp := range []EdgeType{TreeArc, Frond, ReverseFrond, CrossLink, EdgeType(9)} {
		if tp.String() == "" {
			t.Fatalf("EdgeType(%d) has no name", tp)
		}
	}
}

// kosaraju is an independent SCC oracle for property tests.
func kosaraju(g *graph.Graph) [][]graph.NodeID {
	var order []graph.NodeID
	seen := map[graph.NodeID]bool{}
	var dfs1 func(v graph.NodeID)
	dfs1 = func(v graph.NodeID) {
		seen[v] = true
		g.Successors(v, func(w graph.NodeID) bool {
			if !seen[w] {
				dfs1(w)
			}
			return true
		})
		order = append(order, v)
	}
	for _, v := range g.NodesSorted() {
		if !seen[v] {
			dfs1(v)
		}
	}
	compOf := map[graph.NodeID]int{}
	comp := 0
	var comps [][]graph.NodeID
	var dfs2 func(v graph.NodeID)
	dfs2 = func(v graph.NodeID) {
		compOf[v] = comp
		comps[comp] = append(comps[comp], v)
		g.Predecessors(v, func(w graph.NodeID) bool {
			if _, ok := compOf[w]; !ok {
				dfs2(w)
			}
			return true
		})
	}
	for i := len(order) - 1; i >= 0; i-- {
		if _, ok := compOf[order[i]]; !ok {
			comps = append(comps, nil)
			dfs2(order[i])
			comp++
		}
	}
	out := (&Result[graph.NodeID]{Comps: comps}).CompsSorted(func(a, b graph.NodeID) bool { return a < b })
	return out
}

func partitionsEqual(a, b [][]graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestTarjanAgainstKosarajuProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		m := rng.Intn(3 * n)
		g := graph.New()
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i), "x")
		}
		for i := 0; i < m; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		got := Components(g)
		want := kosaraju(g)
		if !partitionsEqual(got, want) {
			t.Fatalf("seed %d: tarjan %v, kosaraju %v", seed, got, want)
		}
	}
}

func TestTarjanDeepRecursionSafe(t *testing.T) {
	// The iterative implementation must handle paths far deeper than any
	// goroutine stack would allow recursively.
	n := 200000
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i), "x")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g.AddEdge(graph.NodeID(n-1), 0) // one giant cycle
	res := Run(g.NodesSorted(), adj(g))
	if len(res.Comps) != 1 || len(res.Comps[0]) != n {
		t.Fatalf("giant cycle not one scc: %d comps", len(res.Comps))
	}
}
