// Package cost provides work meters that the incremental algorithms report
// into. The meters turn the paper's complexity claims into testable
// assertions:
//
//   - Localizability (Section 4): the cost of IncKWS / IncISO is a function
//     of |Q| and the d_Q-neighborhoods of ΔG only. Tests grow |G| with
//     ballast far away from ΔG and assert the meter does not move.
//   - Relative boundedness (Section 5): the cost of IncRPQ / IncSCC is a
//     polynomial in |ΔG|, |Q| and |AFF|. Tests compare the meter against
//     the measured |AFF| rather than |G|.
//
// A nil *Meter is valid everywhere and records nothing, so production code
// paths pay a single nil check.
package cost

import "fmt"

// Meter accumulates abstract work units. Counters are plain ints; the
// library is single-goroutine per operation, and callers that share a meter
// across goroutines must synchronize externally.
type Meter struct {
	// Nodes counts node visits (dequeues, DFS pops, mark inspections).
	Nodes int
	// Edges counts edge traversals (successor/predecessor scans).
	Edges int
	// Entries counts auxiliary-structure entries touched (kdist entries,
	// pmark entries, num/lowlink updates, rank changes).
	Entries int
	// HeapOps counts priority-queue pushes, pops and decrease-keys.
	HeapOps int
}

// AddNodes records n node visits.
func (m *Meter) AddNodes(n int) {
	if m != nil {
		m.Nodes += n
	}
}

// AddEdges records n edge traversals.
func (m *Meter) AddEdges(n int) {
	if m != nil {
		m.Edges += n
	}
}

// AddEntries records n auxiliary entries touched.
func (m *Meter) AddEntries(n int) {
	if m != nil {
		m.Entries += n
	}
}

// AddHeapOps records n priority-queue operations.
func (m *Meter) AddHeapOps(n int) {
	if m != nil {
		m.HeapOps += n
	}
}

// Merge folds another meter's counters into m. The parallel engines give
// each worker a private meter and merge after the join, so the hot loops
// never contend on shared counters; addition is commutative, so the merged
// totals match a sequential run exactly.
func (m *Meter) Merge(o *Meter) {
	if m == nil || o == nil {
		return
	}
	m.Nodes += o.Nodes
	m.Edges += o.Edges
	m.Entries += o.Entries
	m.HeapOps += o.HeapOps
}

// Total returns the sum of all counters: a single scalar proxy for work.
func (m *Meter) Total() int {
	if m == nil {
		return 0
	}
	return m.Nodes + m.Edges + m.Entries + m.HeapOps
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	if m != nil {
		*m = Meter{}
	}
}

// String formats the counters.
func (m *Meter) String() string {
	if m == nil {
		return "cost{nil}"
	}
	return fmt.Sprintf("cost{nodes=%d edges=%d entries=%d heap=%d total=%d}",
		m.Nodes, m.Edges, m.Entries, m.HeapOps, m.Total())
}
