package cost

import (
	"strings"
	"testing"
)

func TestNilMeterIsSafe(t *testing.T) {
	var m *Meter
	m.AddNodes(5)
	m.AddEdges(5)
	m.AddEntries(5)
	m.AddHeapOps(5)
	m.Reset()
	if m.Total() != 0 {
		t.Fatalf("nil meter total = %d", m.Total())
	}
	if m.String() != "cost{nil}" {
		t.Fatalf("nil meter string = %q", m.String())
	}
}

func TestCounters(t *testing.T) {
	m := &Meter{}
	m.AddNodes(1)
	m.AddEdges(2)
	m.AddEntries(3)
	m.AddHeapOps(4)
	if m.Nodes != 1 || m.Edges != 2 || m.Entries != 3 || m.HeapOps != 4 {
		t.Fatalf("counters = %+v", m)
	}
	if m.Total() != 10 {
		t.Fatalf("total = %d", m.Total())
	}
	if !strings.Contains(m.String(), "total=10") {
		t.Fatalf("string = %q", m.String())
	}
	m.Reset()
	if m.Total() != 0 {
		t.Fatalf("reset failed: %+v", m)
	}
}

func TestEstimateKWSCrossover(t *testing.T) {
	// Bench-shaped workload: |V|=1200, |E|=6000, m=3, b=2. The model must
	// keep small batches incremental and route |ΔG| near half of |E| to
	// the batch side (the empirical IncKWS/BLINKS crossover region).
	small := EstimateKWS(1200, 6000, 30, 30, 2, 3, 4)
	if small.PreferBatch() {
		t.Fatalf("small batch routed to batch rebuild: %v", small)
	}
	tiny := EstimateKWS(10, 20, 3, 3, 2, 2, 1)
	if tiny.PreferBatch() {
		t.Fatalf("tiny batch on tiny graph routed to batch rebuild: %v", tiny)
	}
	huge := EstimateKWS(1200, 6000, 1500, 1500, 2, 3, 8)
	if !huge.PreferBatch() {
		t.Fatalf("|ΔG|=50%% of |E| stayed incremental: %v", huge)
	}
	if huge.Aff <= small.Aff || huge.Aff > 1200 {
		t.Fatalf("affected-area estimate not monotone/capped: small=%d huge=%d", small.Aff, huge.Aff)
	}
}

func TestEstimateISOCrossover(t *testing.T) {
	// Incremental seeds the counted anchored enumerations; batch opens
	// one subtree per root candidate. More anchors than root candidates
	// → batch.
	inc := EstimateISO(40, 40, 200, 40, 3)
	if inc.PreferBatch() {
		t.Fatalf("40 insertions vs 200 candidates routed to batch: %v", inc)
	}
	batch := EstimateISO(500, 500, 200, 500, 8)
	if !batch.PreferBatch() {
		t.Fatalf("500 insertions vs 200 candidates stayed incremental: %v", batch)
	}
	small := EstimateISO(10, 2, 3, 10, 2)
	if small.PreferBatch() {
		t.Fatalf("sub-floor batch routed to batch rebuild: %v", small)
	}
	if got := batch.TouchedShards; got != 8 {
		t.Fatalf("TouchedShards not carried through: %d", got)
	}
	// Multiple compatible pattern edges per insertion multiply the seeds:
	// 100 insertions × 3 anchors beat 250 candidates, 100 × 1 do not.
	multi := EstimateISO(100, 0, 250, 300, 2)
	single := EstimateISO(100, 0, 250, 100, 2)
	if !multi.PreferBatch() || single.PreferBatch() {
		t.Fatalf("anchor multiplicity ignored: multi=%v single=%v", multi, single)
	}
}
