package cost

import (
	"strings"
	"testing"
)

func TestNilMeterIsSafe(t *testing.T) {
	var m *Meter
	m.AddNodes(5)
	m.AddEdges(5)
	m.AddEntries(5)
	m.AddHeapOps(5)
	m.Reset()
	if m.Total() != 0 {
		t.Fatalf("nil meter total = %d", m.Total())
	}
	if m.String() != "cost{nil}" {
		t.Fatalf("nil meter string = %q", m.String())
	}
}

func TestCounters(t *testing.T) {
	m := &Meter{}
	m.AddNodes(1)
	m.AddEdges(2)
	m.AddEntries(3)
	m.AddHeapOps(4)
	if m.Nodes != 1 || m.Edges != 2 || m.Entries != 3 || m.HeapOps != 4 {
		t.Fatalf("counters = %+v", m)
	}
	if m.Total() != 10 {
		t.Fatalf("total = %d", m.Total())
	}
	if !strings.Contains(m.String(), "total=10") {
		t.Fatalf("string = %q", m.String())
	}
	m.Reset()
	if m.Total() != 0 {
		t.Fatalf("reset failed: %+v", m)
	}
}
