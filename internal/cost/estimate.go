package cost

import "fmt"

// Cost-model estimates for the incremental-vs-batch decision. The paper's
// Figure 8 experiments show both localizable classes losing to their batch
// baselines once ΔG stops being small — IncKWS to BLINKS past |ΔG| ≈ 20%
// of |E|, IncISO to VF2 at batch granularity — because the repair work
// grows with the affected area while the batch cost stays fixed. The
// estimators below predict |AFF| and the two costs from O(1) graph and
// batch statistics, so an engine can route each batch to whichever side
// the model says is cheaper. Estimation must be a pure function of the
// abstract graph and batch (never of worker or shard count), so the
// decision — and therefore the externally observable behavior — is
// identical at any parallelism or sharding configuration.

// FallbackMinBatch is the batch size below which the incremental path is
// always taken: tiny batches are the incremental algorithms' home turf,
// and the estimates are too coarse to overrule them there. Engines also
// use it to skip estimator bookkeeping (shard footprints) on the tiny-
// batch hot path.
const FallbackMinBatch = 32

// Estimate is one repair-vs-batch prediction.
type Estimate struct {
	// Aff is the predicted size of the affected area |AFF| (nodes for
	// KWS, candidate enumerations for ISO).
	Aff int
	// RepairCost and BatchCost are the predicted work units (comparable
	// to Meter.Total scale) of the incremental repair and the batch
	// recomputation.
	RepairCost, BatchCost int
	// TouchedShards counts the graph shards ΔG writes — the locality
	// footprint of the batch, reported for observability (benchmarks and
	// tests); it does not enter PreferBatch.
	TouchedShards int
}

// PreferBatch reports whether the model predicts the batch algorithm to
// be cheaper than the incremental repair.
func (e Estimate) PreferBatch() bool {
	return e.BatchCost > 0 && e.RepairCost > e.BatchCost
}

func (e Estimate) String() string {
	mode := "inc"
	if e.PreferBatch() {
		mode = "batch"
	}
	return fmt.Sprintf("est{aff=%d repair=%d batch=%d shards=%d -> %s}",
		e.Aff, e.RepairCost, e.BatchCost, e.TouchedShards, mode)
}

// EstimateKWS models the IncKWS repair of one batch against the BLINKS
// batch build (per-keyword bounded BFS over the whole graph).
//
// Affected entries come from deletions that sever a chosen shortest-path
// tree edge: each keyword's next-pointer forest has at most |V| of the |E|
// edges, so a deletion hits it with probability ≈ |V|/|E|, and an affected
// root drags in its ancestor cone, which the bound b truncates to ≈ 1+b
// nodes on average. Insertions only propagate decreases (cheap); they
// contribute their endpoints. Repair pays heap-and-scan work per affected
// entry; batch pays one bounded BFS per keyword.
func EstimateKWS(numNodes, numEdges, ins, dels, bound, keywords, touchedShards int) Estimate {
	if numNodes == 0 || keywords == 0 {
		return Estimate{TouchedShards: touchedShards}
	}
	avgDeg := (numEdges + numNodes - 1) / numNodes
	if avgDeg < 1 {
		avgDeg = 1
	}
	hitNum, hitDen := numNodes, numEdges
	if hitDen < hitNum {
		hitNum, hitDen = 1, 1 // sparse forests: every deletion can hit
	}
	aff := dels*hitNum*(1+bound)/hitDen + ins
	if aff > numNodes {
		aff = numNodes
	}
	logAff := 1
	for n := aff; n > 1; n >>= 1 {
		logAff++
	}
	// Per-affected-entry work: one adjacency scan plus amortized heap
	// traffic. The heap term is halved — most affected entries settle on
	// their first pop — which calibrates the crossover to the empirical
	// ~15–20% of |E| on the Figure 8 workloads instead of tripping at 10%,
	// where IncKWS still wins.
	repair := keywords * aff * (avgDeg + logAff/2)
	batch := keywords * (numNodes + numEdges)
	if ins+dels < FallbackMinBatch {
		repair = 0 // force the incremental side for tiny batches
	}
	return Estimate{Aff: aff, RepairCost: repair, BatchCost: batch, TouchedShards: touchedShards}
}

// EstimateISO models the IncISO anchored delta enumeration against the
// VF2 batch pass. Both sides pay one pattern-search subtree per seed: the
// incremental side seeds `anchors` anchored enumerations (the caller
// counts one per label-compatible pattern edge per inserted edge), the
// batch side one VF2 subtree per candidate image of the root pattern
// node. Deletions are near-free on the incremental side (inverted-index
// lookups), so the decision reduces to comparing seed counts; the subtree
// factor cancels and graph size drops out of the model entirely.
func EstimateISO(ins, dels, rootCandidates, anchors, touchedShards int) Estimate {
	if anchors < 0 {
		anchors = 0
	}
	aff := anchors
	repair := aff
	batch := rootCandidates
	if ins+dels < FallbackMinBatch {
		repair = 0 // force the incremental side for tiny batches
	}
	return Estimate{Aff: aff, RepairCost: repair, BatchCost: batch, TouchedShards: touchedShards}
}
