package rpq

import (
	"fmt"
	"sort"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
	"incgraph/internal/pq"
)

// This file implements IncRPQ (Fig. 5) and the unit-at-a-time baseline
// IncRPQn.

// Delta describes changes ΔO to Q(G).
type Delta struct {
	Added   []Pair
	Removed []Pair
	// pending accumulates transitions during an Apply; opposite transitions
	// of the same pair cancel (the pair was only transiently a match).
	pending map[Pair]bool
}

// Empty reports whether the output was unaffected.
func (d *Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// note records a match transition.
func (d *Delta) note(p Pair, added bool) {
	if d.pending == nil {
		d.pending = make(map[Pair]bool)
	}
	if cur, ok := d.pending[p]; ok && cur != added {
		delete(d.pending, p)
		return
	}
	d.pending[p] = added
}

// finish materializes the pending transitions into sorted Added/Removed.
func (d *Delta) finish() {
	for p, added := range d.pending {
		if added {
			d.Added = append(d.Added, p)
		} else {
			d.Removed = append(d.Removed, p)
		}
	}
	d.pending = nil
	less := func(ps []Pair) func(i, j int) bool {
		return func(i, j int) bool {
			if ps[i].Src != ps[j].Src {
				return ps[i].Src < ps[j].Src
			}
			return ps[i].Dst < ps[j].Dst
		}
	}
	sort.Slice(d.Added, less(d.Added))
	sort.Slice(d.Removed, less(d.Removed))
}

// Apply processes a batch ΔG with IncRPQ. The batch is normalized; node
// creation side effects of cancelled insertions are preserved.
func (e *Engine) Apply(batch graph.Batch) (Delta, error) {
	var d Delta
	// New nodes first (they may be new sources).
	var newNodes []graph.NodeID
	for _, u := range batch {
		if u.Op != graph.Insert {
			continue
		}
		if e.g.EnsureNode(u.From, u.FromLabel) {
			newNodes = append(newNodes, u.From)
		}
		if e.g.EnsureNode(u.To, u.ToLabel) {
			newNodes = append(newNodes, u.To)
		}
	}
	batch = batch.Normalize()
	for _, u := range batch {
		if u.Op == graph.Delete && !e.g.HasEdge(u.From, u.To) {
			return Delta{}, fmt.Errorf("rpq: %w: delete of missing edge (%d,%d)", graph.ErrBadUpdate, u.From, u.To)
		}
		if u.Op == graph.Insert && e.g.HasEdge(u.From, u.To) {
			return Delta{}, fmt.Errorf("rpq: %w: insert of existing edge (%d,%d)", graph.ErrBadUpdate, u.From, u.To)
		}
	}
	// Structural updates first, in one batch application — large batches
	// mutate shard-parallel via the two-phase protocol of internal/graph;
	// markings are repaired afterwards. The batch was validated above, so
	// it cannot fail partway.
	if err := e.g.ApplyBatch(batch); err != nil {
		return Delta{}, err
	}
	ins, dels := batch.Split()
	// Route each update to the sources whose markings it can touch, via
	// the inverted index: an update on edge (v, w) is relevant to source u
	// only if u has an entry at v (deletion support / insertion
	// relaxation) — sources without one cannot be affected.
	relIns := make(map[graph.NodeID]graph.Batch)
	relDels := make(map[graph.NodeID]graph.Batch)
	for _, u := range dels {
		for src := range e.srcAt[u.From] {
			relDels[src] = append(relDels[src], u)
		}
	}
	for _, u := range ins {
		for src := range e.srcAt[u.From] {
			relIns[src] = append(relIns[src], u)
		}
	}
	touched := make(map[graph.NodeID]bool, len(relIns)+len(relDels))
	for src := range relDels {
		touched[src] = true
	}
	for src := range relIns {
		touched[src] = true
	}
	// Each affected source's repair touches only its own marking table, so
	// the repairs fan out across workers against the read-shared graph —
	// as do the full product BFS builds of brand-new sources (their
	// markings are part of AFF — data newly inspected). Global effects are
	// buffered per source and merged serially below; the merged engine and
	// the sorted delta are identical to the sequential loop.
	srcs := make([]graph.NodeID, 0, len(touched))
	for src := range touched {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	workers := e.g.Parallelism()
	if workers > 1 {
		e.g.PrepareConcurrentReads()
	}
	reps := make([]*srcRepair, len(srcs)+len(newNodes))
	meters := make([]cost.Meter, workers)
	graph.ParallelFor(workers, len(reps), func(worker, i int) {
		if i < len(srcs) {
			src := srcs[i]
			r := &srcRepair{e: e, src: src, sm: e.marks[src], meter: &meters[worker]}
			r.repair(relIns[src], relDels[src])
			reps[i] = r
			return
		}
		// A brand-new node cannot already be a touched source (it had no
		// entries when the updates were routed), so the two task kinds are
		// disjoint.
		reps[i] = e.buildSource(newNodes[i-len(srcs)], &meters[worker])
	})
	for _, r := range reps {
		e.mergeRepair(r, &d)
	}
	for i := range meters {
		e.meter.Merge(&meters[i])
	}
	d.finish()
	return d, nil
}

// ApplyUnitwise is IncRPQn: the batch is processed one unit update at a
// time.
func (e *Engine) ApplyUnitwise(batch graph.Batch) (Delta, error) {
	var total Delta
	for _, u := range batch {
		d, err := e.Apply(graph.Batch{u})
		if err != nil {
			return Delta{}, err
		}
		for _, p := range d.Added {
			total.note(p, true)
		}
		for _, p := range d.Removed {
			total.note(p, false)
		}
	}
	total.finish()
	return total, nil
}

// ApplyInsert processes one unit insertion.
func (e *Engine) ApplyInsert(u graph.Update) (Delta, error) {
	if u.Op != graph.Insert {
		return Delta{}, fmt.Errorf("rpq: ApplyInsert got %v", u)
	}
	return e.Apply(graph.Batch{u})
}

// ApplyDelete processes one unit deletion.
func (e *Engine) ApplyDelete(u graph.Update) (Delta, error) {
	if u.Op != graph.Delete {
		return Delta{}, fmt.Errorf("rpq: ApplyDelete got %v", u)
	}
	return e.Apply(graph.Batch{u})
}

// repair fixes the marking table of source r.src after the updates:
// identAff (Fig. 5 line 1), potentials (lines 2–4), insertion seeding
// (lines 5–8), settle (line 9) and removal of unreachable entries. It
// runs concurrently with other sources' repairs: everything it writes is
// source-local or buffered on r (see srcRepair).
func (r *srcRepair) repair(ins, dels graph.Batch) {
	e, sm := r.e, r.sm
	affected := r.identAff(dels)
	q := pq.New[key]()
	// Potentials from unaffected cpre members (Fig. 5 lines 2–4).
	for k := range affected {
		ent := sm.table[k]
		best := Unreachable
		for p := range ent.cpre {
			r.meter.AddEdges(1)
			if affected[p] {
				continue
			}
			if pd := sm.table[p].dist + 1; pd < best {
				best = pd
			}
		}
		ent.dist = best
		ent.mpre = make(map[key]struct{})
		r.meter.AddEntries(1)
		if best < Unreachable {
			q.Push(k, best)
		}
	}
	// Insertions between unaffected endpoints seed the queue (lines 5–8);
	// cpre links are structural and recorded regardless of distances.
	for _, u := range ins {
		lblTo := e.g.LabelIDAt(u.To)
		for s := 0; s < e.nfa.NumStates(); s++ {
			kv := key{u.From, s}
			ev := sm.table[kv]
			if ev == nil {
				continue
			}
			for _, s2 := range e.nfa.NextID(s, lblTo) {
				kw := key{u.To, s2}
				ew := sm.table[kw]
				cand := ev.dist + 1
				if affected[kv] {
					// The tentative distance of kv already accounted for
					// this edge via cpre; only the structural link is new.
					if ew != nil {
						ew.cpre[kv] = struct{}{}
					}
					continue
				}
				switch {
				case ew == nil:
					if cand >= Unreachable {
						continue
					}
					ew = &entry{
						dist: cand,
						cpre: map[key]struct{}{kv: {}},
						mpre: map[key]struct{}{kv: {}},
					}
					sm.table[kw] = ew
					r.meter.AddEntries(1)
					r.noteCreated(kw)
					q.Push(kw, cand)
				case cand < ew.dist:
					ew.dist = cand
					ew.cpre[kv] = struct{}{}
					ew.mpre = map[key]struct{}{kv: {}}
					r.meter.AddEntries(1)
					q.Push(kw, cand)
				case cand == ew.dist:
					ew.cpre[kv] = struct{}{}
					ew.mpre[kv] = struct{}{}
				default:
					ew.cpre[kv] = struct{}{}
				}
			}
		}
	}
	// Settle exact values (line 9).
	r.settle(q)
	r.meter.AddHeapOps(q.Ops)
	// Entries that stayed unreachable disappear, together with their
	// structural links in successors.
	for k := range affected {
		ent := sm.table[k]
		if ent == nil || ent.dist < Unreachable {
			continue
		}
		delete(sm.table, k)
		r.noteRemoved(k)
		r.meter.AddEntries(1)
		e.g.Successors(k.v, func(y graph.NodeID) bool {
			for _, sy := range e.nfa.NextID(k.s, e.g.LabelIDAt(y)) {
				if ey := sm.table[key{y, sy}]; ey != nil {
					delete(ey.cpre, k)
					delete(ey.mpre, k)
				}
			}
			return true
		})
	}
}

// identAff implements Fig. 5 line 1: remove the structural links broken by
// the deletions and mark every entry whose mpre support drains away,
// propagating through mpre members transitively.
func (r *srcRepair) identAff(dels graph.Batch) map[key]bool {
	e, sm := r.e, r.sm
	affected := make(map[key]bool)
	var stack []key
	markAffected := func(k key) {
		if !affected[k] && !sm.table[k].seed {
			affected[k] = true
			stack = append(stack, k)
		}
	}
	for _, u := range dels {
		lblTo := e.g.LabelIDAt(u.To)
		for s := 0; s < e.nfa.NumStates(); s++ {
			kv := key{u.From, s}
			if sm.table[kv] == nil {
				continue
			}
			for _, s2 := range e.nfa.NextID(s, lblTo) {
				kw := key{u.To, s2}
				ew := sm.table[kw]
				if ew == nil {
					continue
				}
				delete(ew.cpre, kv)
				if _, inM := ew.mpre[kv]; inM {
					delete(ew.mpre, kv)
					if len(ew.mpre) == 0 {
						markAffected(kw)
					}
				}
			}
		}
	}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		r.meter.AddNodes(1)
		// Successors that relied on k for their shortest paths lose that
		// support.
		e.g.Successors(k.v, func(y graph.NodeID) bool {
			r.meter.AddEdges(1)
			for _, sy := range e.nfa.NextID(k.s, e.g.LabelIDAt(y)) {
				ky := key{y, sy}
				ey := sm.table[ky]
				if ey == nil || affected[ky] {
					continue
				}
				if _, inM := ey.mpre[k]; inM {
					delete(ey.mpre, k)
					if len(ey.mpre) == 0 {
						markAffected(ky)
					}
				}
			}
			return true
		})
	}
	return affected
}
