package rpq

import (
	"math/rand"
	"testing"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
	"incgraph/internal/rex"
)

func lineGraph(labels ...string) *graph.Graph {
	g := graph.New()
	for i, l := range labels {
		g.AddNode(graph.NodeID(i), l)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return g
}

func mustEngine(t testing.TB, g *graph.Graph, q string) *Engine {
	t.Helper()
	e, err := Parse(g, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSingleNodeMatch(t *testing.T) {
	// A path of length 0 carries one label: node v matches (v,v) iff
	// l(v) ∈ L(Q).
	g := lineGraph("a")
	e := mustEngine(t, g, "a")
	if !e.HasMatch(0, 0) || e.NumMatches() != 1 {
		t.Fatalf("matches = %v", e.Matches())
	}
	e2 := mustEngine(t, g, "b")
	if e2.NumMatches() != 0 {
		t.Fatalf("label mismatch matched")
	}
}

func TestChainMatches(t *testing.T) {
	g := lineGraph("a", "b", "c")
	e := mustEngine(t, g, "a.b.c")
	ms := e.Matches()
	if len(ms) != 1 || ms[0] != (Pair{0, 2}) {
		t.Fatalf("matches = %v", ms)
	}
	// Prefix queries match shorter paths.
	e2 := mustEngine(t, g, "a.b")
	if !e2.HasMatch(0, 1) || e2.NumMatches() != 1 {
		t.Fatalf("prefix matches = %v", e2.Matches())
	}
}

func TestStarAndUnion(t *testing.T) {
	g := lineGraph("a", "a", "a", "b")
	e := mustEngine(t, g, "a.a*")
	// Every a-node reaches every later a-node (including itself).
	want := 3 + 2 + 1
	if e.NumMatches() != want {
		t.Fatalf("a.a* matches = %v", e.Matches())
	}
	e2 := mustEngine(t, g, "a.a*.b")
	if e2.NumMatches() != 3 || !e2.HasMatch(0, 3) {
		t.Fatalf("a.a*.b matches = %v", e2.Matches())
	}
	e3 := mustEngine(t, g, "a.(a+b)")
	if e3.NumMatches() != 3 { // (0,1),(1,2),(2,3)
		t.Fatalf("a.(a+b) matches = %v", e3.Matches())
	}
}

func TestPaperQueryOnCycle(t *testing.T) {
	// The Example 4 query c·(b·a+c)*·c on a graph where c-nodes chain
	// through b·a pairs and other c's.
	g := graph.New()
	g.AddNode(1, "c")
	g.AddNode(2, "b")
	g.AddNode(3, "a")
	g.AddNode(4, "c")
	g.AddNode(5, "c")
	g.AddEdge(1, 2) // c b
	g.AddEdge(2, 3) // b a
	g.AddEdge(3, 4) // a c
	g.AddEdge(4, 5) // c c
	e := mustEngine(t, g, "c.(b.a+c)*.c")
	// c1→b→a→c4 matches (c,ba,c); c1→…→c5 matches (c,ba,c,c)? The string
	// c b a c c parses as c·(b·a)·(c)·c ✓; c4→c5 matches (c,c).
	for _, want := range []Pair{{1, 4}, {1, 5}, {4, 5}} {
		if !e.HasMatch(want.Src, want.Dst) {
			t.Fatalf("missing match %v in %v", want, e.Matches())
		}
	}
	if e.HasMatch(2, 4) || e.HasMatch(1, 3) {
		t.Fatalf("spurious matches: %v", e.Matches())
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestUnitInsertCreatesMatches(t *testing.T) {
	g := lineGraph("a", "b")
	g.AddNode(10, "c")
	e := mustEngine(t, g, "a.b.c")
	if e.NumMatches() != 0 {
		t.Fatalf("premature matches")
	}
	d, err := e.ApplyInsert(graph.Ins(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || d.Added[0] != (Pair{0, 10}) {
		t.Fatalf("delta = %+v", d)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestUnitDeleteRemovesMatches(t *testing.T) {
	g := lineGraph("a", "b", "c")
	e := mustEngine(t, g, "a.b.c")
	d, err := e.ApplyDelete(graph.Del(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Removed) != 1 || d.Removed[0] != (Pair{0, 2}) {
		t.Fatalf("delta = %+v", d)
	}
	if e.NumMatches() != 0 {
		t.Fatalf("stale matches: %v", e.Matches())
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAlternatePathSurvivesDeletion(t *testing.T) {
	// Two disjoint a→b→c paths between the same endpoints: deleting one
	// keeps the match (mpre support from the other).
	g := graph.New()
	g.AddNode(0, "a")
	g.AddNode(1, "b")
	g.AddNode(2, "b")
	g.AddNode(3, "c")
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	e := mustEngine(t, g, "a.b.c")
	if !e.HasMatch(0, 3) {
		t.Fatalf("setup: match missing")
	}
	d, err := e.ApplyDelete(graph.Del(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("match should survive: %+v", d)
	}
	if !e.HasMatch(0, 3) {
		t.Fatalf("match lost")
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestExample5InterleavedBatch(t *testing.T) {
	// The spirit of Example 5: a batch whose deletion breaks a path and
	// whose insertions reroute it — the match survives with a longer dist.
	g := lineGraph("a", "b", "c")
	g.AddNode(10, "b")
	e := mustEngine(t, g, "a.b.b*.c")
	if !e.HasMatch(0, 2) {
		t.Fatalf("setup failed: %v", e.Matches())
	}
	batch := graph.Batch{
		graph.Del(1, 2),  // break a→b→c
		graph.Ins(1, 10), // reroute a→b→b'→c
		graph.Ins(10, 2),
	}
	d, err := e.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !e.HasMatch(0, 2) {
		t.Fatalf("match lost after reroute: %v", e.Matches())
	}
	for _, p := range d.Removed {
		if p == (Pair{0, 2}) {
			t.Fatalf("transient removal leaked into delta")
		}
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestNewNodeNewSource(t *testing.T) {
	g := lineGraph("b", "c")
	e := mustEngine(t, g, "a.b.c")
	// Insert a brand-new a-node pointing at the chain: it becomes a new
	// source with a full product BFS.
	d, err := e.Apply(graph.Batch{graph.InsNew(100, 0, "a", "")})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || d.Added[0] != (Pair{100, 1}) {
		t.Fatalf("delta = %+v", d)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundednessGadget(t *testing.T) {
	// The Theorem 1 flavor (Fig. 9): one unit insertion with empty ΔO
	// followed by another unit insertion whose ΔO has Θ(n) matches. A
	// bounded algorithm cannot exist, but the localizable/relatively
	// bounded engine must still be correct on both.
	n := 8
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i), "a")
		if i > 0 {
			g.AddEdge(graph.NodeID(i-1), graph.NodeID(i))
		}
	}
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(100+i), "b")
		if i > 0 {
			g.AddEdge(graph.NodeID(100+i-1), graph.NodeID(100+i))
		}
	}
	g.AddNode(999, "c")
	e := mustEngine(t, g, "a.a*.b.b*.c")
	if e.NumMatches() != 0 {
		t.Fatalf("no matches expected yet")
	}
	// Insertion 1: connect the chains; still no match (no c reachable).
	d1, err := e.ApplyInsert(graph.Ins(graph.NodeID(n-1), 100))
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Empty() {
		t.Fatalf("d1 = %+v", d1)
	}
	// Insertion 2: attach the c sink; every a-node now matches.
	d2, err := e.ApplyInsert(graph.Ins(graph.NodeID(100+n-1), 999))
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Added) != n {
		t.Fatalf("|ΔO| = %d, want %d", len(d2.Added), n)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineErrors(t *testing.T) {
	g := lineGraph("a", "b")
	if _, err := NewEngine(g, nil, nil); err == nil {
		t.Fatalf("nil query accepted")
	}
	if _, err := Parse(g, "a..b", nil); err == nil {
		t.Fatalf("bad query accepted")
	}
	e := mustEngine(t, g, "a.b")
	if _, err := e.ApplyInsert(graph.Del(0, 1)); err == nil {
		t.Fatalf("ApplyInsert accepted delete")
	}
	if _, err := e.ApplyDelete(graph.Ins(0, 1)); err == nil {
		t.Fatalf("ApplyDelete accepted insert")
	}
	if _, err := e.Apply(graph.Batch{graph.Del(1, 0)}); err == nil {
		t.Fatalf("missing edge deletion accepted")
	}
	if _, err := e.Apply(graph.Batch{graph.Ins(0, 1)}); err == nil {
		t.Fatalf("duplicate insertion accepted")
	}
}

func randomLabeled(rng *rand.Rand, n, m int, labels []string) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i), labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	return g
}

func randomBatch(rng *rand.Rand, g *graph.Graph, k int, labels []string) graph.Batch {
	sim := g.Clone()
	var batch graph.Batch
	maxID := sim.MaxNodeID()
	for len(batch) < k {
		nodes := sim.NodesSorted()
		v := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(5) {
		case 0, 1:
			succ := sim.SuccessorsSorted(v)
			if len(succ) == 0 {
				continue
			}
			u := graph.Del(v, succ[rng.Intn(len(succ))])
			sim.Apply(u)
			batch = append(batch, u)
		case 2:
			maxID++
			u := graph.InsNew(v, maxID, "", labels[rng.Intn(len(labels))])
			sim.Apply(u)
			batch = append(batch, u)
		default:
			w := nodes[rng.Intn(len(nodes))]
			if sim.HasEdge(v, w) {
				continue
			}
			u := graph.Ins(v, w)
			sim.Apply(u)
			batch = append(batch, u)
		}
	}
	return batch
}

func TestIncrementalEqualsBatchRandomized(t *testing.T) {
	// The core equivalence property: after random batches, the full
	// marking tables (dist, cpre, mpre) and the match set must equal a
	// batch rebuild, for both IncRPQ and IncRPQn.
	labels := []string{"a", "b", "c"}
	queries := []string{"a.b", "a.b*.c", "a.(b+c)*.a", "c.(b.a+c)*.c", "a.a*"}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := queries[int(seed)%len(queries)]
		g := randomLabeled(rng, 20, 45, labels)
		batch := randomBatch(rng, g, 10, labels)

		eb := mustEngine(t, g.Clone(), q)
		if _, err := eb.Apply(batch); err != nil {
			t.Fatalf("seed %d: Apply: %v", seed, err)
		}
		if err := eb.Check(); err != nil {
			t.Fatalf("seed %d (%s): IncRPQ: %v", seed, q, err)
		}

		eu := mustEngine(t, g.Clone(), q)
		if _, err := eu.ApplyUnitwise(batch); err != nil {
			t.Fatalf("seed %d: ApplyUnitwise: %v", seed, err)
		}
		if err := eu.Check(); err != nil {
			t.Fatalf("seed %d (%s): IncRPQn: %v", seed, q, err)
		}

		if !eb.Graph().Equal(eu.Graph()) {
			t.Fatalf("seed %d: graphs diverge", seed)
		}
		mb, mu := eb.Matches(), eu.Matches()
		if len(mb) != len(mu) {
			t.Fatalf("seed %d: match sets diverge: %d vs %d", seed, len(mb), len(mu))
		}
		for i := range mb {
			if mb[i] != mu[i] {
				t.Fatalf("seed %d: match %d: %v vs %v", seed, i, mb[i], mu[i])
			}
		}
	}
}

func TestDeltaConsistencyRandomized(t *testing.T) {
	// Property: old matches ⊕ Delta == new matches.
	labels := []string{"a", "b", "c"}
	for seed := int64(50); seed < 62; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomLabeled(rng, 18, 40, labels)
		e := mustEngine(t, g, "a.b*.c")
		before := make(map[Pair]bool)
		for _, p := range e.Matches() {
			before[p] = true
		}
		batch := randomBatch(rng, g, 8, labels)
		d, err := e.Apply(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range d.Removed {
			if !before[p] {
				t.Fatalf("seed %d: removed non-match %v", seed, p)
			}
			delete(before, p)
		}
		for _, p := range d.Added {
			if before[p] {
				t.Fatalf("seed %d: added existing match %v", seed, p)
			}
			before[p] = true
		}
		after := e.Matches()
		if len(after) != len(before) {
			t.Fatalf("seed %d: delta wrong: %d vs %d", seed, len(after), len(before))
		}
		for _, p := range after {
			if !before[p] {
				t.Fatalf("seed %d: match %v unexplained by delta", seed, p)
			}
		}
	}
}

func TestMatchesAgreeWithASTSemantics(t *testing.T) {
	// Cross-validate the engine against brute-force path enumeration with
	// the AST matcher on tiny graphs (paths up to length 4).
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := randomLabeled(rng, 7, 12, []string{"a", "b"})
		ast := rex.MustParse("a.b*.a")
		e, err := NewEngine(g, ast, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: enumerate all paths up to length 6 (node count bound
		// is small, but cycles allow longer matches — restrict to length 6
		// and only verify brute-force-found matches are present).
		type st struct {
			v    graph.NodeID
			path []string
		}
		for _, src := range g.NodesSorted() {
			stack := []st{{src, []string{g.Label(src)}}}
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if ast.MatchSeq(cur.path) && !e.HasMatch(src, cur.v) {
					t.Fatalf("missing match (%d,%d) via %v", src, cur.v, cur.path)
				}
				if len(cur.path) >= 6 {
					continue
				}
				g.Successors(cur.v, func(w graph.NodeID) bool {
					np := append(append([]string{}, cur.path...), g.Label(w))
					stack = append(stack, st{w, np})
					return true
				})
			}
		}
	}
}

func TestRelativeBoundednessSmoke(t *testing.T) {
	// An update far from any source's reachable product area must cost
	// little even on a much larger graph, as long as AFF stays fixed.
	run := func(extra int) int {
		g := graph.New()
		g.AddNode(0, "a")
		g.AddNode(1, "b")
		g.AddNode(2, "c")
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		// Ballast: a long z-chain, unreachable and unmatched.
		for i := 0; i < extra; i++ {
			id := graph.NodeID(100 + i)
			g.AddNode(id, "z")
			if i > 0 {
				g.AddEdge(id-1, id)
			}
		}
		e, err := Parse(g, "a.b.c", nil)
		if err != nil {
			t.Fatal(err)
		}
		m := &cost.Meter{}
		e.meter = m
		if _, err := e.Apply(graph.Batch{graph.Del(1, 2), graph.Ins(0, 2)}); err != nil {
			t.Fatal(err)
		}
		return m.Total()
	}
	small := run(10)
	big := run(4000)
	if big != small {
		t.Fatalf("IncRPQ cost grew with |G|: %d vs %d", small, big)
	}
}

func TestWitness(t *testing.T) {
	g := lineGraph("a", "b", "b", "c")
	e := mustEngine(t, g, "a.b*.c")
	path, ok := e.Witness(0, 3)
	if !ok {
		t.Fatalf("witness missing for (0,3)")
	}
	if len(path) != 4 || path[0] != 0 || path[3] != 3 {
		t.Fatalf("witness = %v", path)
	}
	if err := e.VerifyWitness(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Witness(1, 3); ok {
		t.Fatalf("witness for non-match")
	}
	if _, ok := e.Witness(99, 3); ok {
		t.Fatalf("witness for missing source")
	}
	// Single-node witness.
	g2 := lineGraph("a")
	e2 := mustEngine(t, g2, "a")
	p2, ok := e2.Witness(0, 0)
	if !ok || len(p2) != 1 {
		t.Fatalf("self witness = %v %v", p2, ok)
	}
	if err := e2.VerifyWitness(p2); err != nil {
		t.Fatal(err)
	}
	if err := e2.VerifyWitness(nil); err == nil {
		t.Fatalf("empty witness accepted")
	}
}

func TestWitnessSurvivesUpdates(t *testing.T) {
	// Property: after random update batches, every match has a verifiable
	// witness of length dist.
	labels := []string{"a", "b", "c"}
	for seed := int64(400); seed < 408; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomLabeled(rng, 15, 35, labels)
		e := mustEngine(t, g, "a.b*.c")
		batch := randomBatch(rng, g, 8, labels)
		if _, err := e.Apply(batch); err != nil {
			t.Fatal(err)
		}
		for _, m := range e.Matches() {
			path, ok := e.Witness(m.Src, m.Dst)
			if !ok {
				t.Fatalf("seed %d: match %v has no witness", seed, m)
			}
			if err := e.VerifyWitness(path); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}
