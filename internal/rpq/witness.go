package rpq

import (
	"fmt"

	"incgraph/internal/graph"
)

// Witness returns a shortest path (v0 = src, …, vn = dst) whose label
// string is in L(Q), certifying the match (src, dst) — the provenance of an
// RPQ answer. It is reconstructed from the maintained markings by walking
// mpre pointers backwards from an accepting entry, so it costs O(path) and
// stays valid across incremental updates. ok is false when (src, dst) is
// not a match.
func (e *Engine) Witness(src, dst graph.NodeID) ([]graph.NodeID, bool) {
	sm := e.marks[src]
	if sm == nil || sm.acc[dst] == 0 {
		return nil, false
	}
	// Pick the accepting entry at dst with the smallest distance, breaking
	// ties by state for determinism.
	best := key{v: -1}
	bestDist := Unreachable + 1
	for s := 0; s < e.nfa.NumStates(); s++ {
		if !e.nfa.Accepting(s) {
			continue
		}
		if ent := sm.table[key{dst, s}]; ent != nil && ent.dist < bestDist {
			best = key{dst, s}
			bestDist = ent.dist
		}
	}
	if best.v == -1 {
		return nil, false
	}
	// Walk mpre back to the seed. Each step decreases dist by one, so the
	// walk terminates in exactly bestDist steps.
	path := make([]graph.NodeID, bestDist+1)
	cur := best
	for i := bestDist; ; i-- {
		path[i] = cur.v
		ent := sm.table[cur]
		if ent == nil {
			return nil, false // inconsistent marking; cannot happen
		}
		if ent.dist == 0 {
			break
		}
		picked := false
		var next key
		for p := range ent.mpre {
			if !picked || p.v < next.v || p.v == next.v && p.s < next.s {
				next = p
				picked = true
			}
		}
		if !picked {
			return nil, false // inconsistent marking; cannot happen
		}
		cur = next
	}
	return path, true
}

// VerifyWitness checks that a path certifies a match of the engine's query:
// consecutive edges exist and the label string is in L(Q). Tests and
// auditing use it.
func (e *Engine) VerifyWitness(path []graph.NodeID) error {
	if len(path) == 0 {
		return fmt.Errorf("rpq: empty witness")
	}
	labels := make([]string, len(path))
	for i, v := range path {
		if !e.g.HasNode(v) {
			return fmt.Errorf("rpq: witness node %d missing", v)
		}
		labels[i] = e.g.Label(v)
		if i > 0 && !e.g.HasEdge(path[i-1], v) {
			return fmt.Errorf("rpq: witness edge (%d,%d) missing", path[i-1], v)
		}
	}
	if !e.ast.MatchSeq(labels) {
		return fmt.Errorf("rpq: witness labels %v not in L(%s)", labels, e.ast)
	}
	return nil
}
