// Package rpq implements regular path queries (RPQ, Section 2.1 of Fan,
// Hu & Tian, SIGMOD 2017) and their incrementalization (Section 5.2).
//
// The batch algorithm RPQ_NFA [29,33] compiles the query to an ε-free NFA
// M_Q and, for every source node u whose label can start a word of L(Q),
// runs a BFS over the intersection (product) graph of G and M_Q. A match
// (u, w) holds when some product node (w, s) with s accepting is reachable
// from u's seed states.
//
// The auxiliary structure is the marking pmark_e: per source u, node v and
// state s an entry (dist, cpre, mpre), where dist is the shortest product
// distance from u's seeds, cpre the product predecessors that carry
// entries, and mpre the subset on shortest paths. IncRPQ (Fig. 5) repairs
// these markings: identAff walks mpre supports broken by deletions,
// potentials are recomputed from unaffected cpre members, insertions seed
// the same per-source priority queue, and a Dijkstra-style settle decides
// every affected distance at most once — the cost profile that makes IncRPQ
// bounded relative to RPQ_NFA.
package rpq

import (
	"fmt"
	"sort"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
	"incgraph/internal/pq"
	"incgraph/internal/rex"
)

// Unreachable is the distance of entries scheduled for removal.
const Unreachable = int(1) << 30

// Pair is a query answer: Dst is reachable from Src along a path whose
// label string is in L(Q).
type Pair struct {
	Src, Dst graph.NodeID
}

// key identifies a product node (graph node, NFA state) within one source's
// marking table.
type key struct {
	v graph.NodeID
	s int
}

// entry is one pmark_e record.
type entry struct {
	dist int
	// seed marks source entries (u, s) with s ∈ δ(s0, l(u)); they have
	// dist 0 and are never affected by updates.
	seed bool
	// cpre holds the product predecessors of this node that carry entries.
	cpre map[key]struct{}
	// mpre holds the cpre members on shortest product paths
	// (dist(pred) + 1 == dist).
	mpre map[key]struct{}
}

// sourceMark is the marking table of one source node.
type sourceMark struct {
	table map[key]*entry
	// acc counts, per target node, how many accepting states carry entries;
	// the source matches the target iff acc > 0.
	acc map[graph.NodeID]int
}

// Engine maintains Q(G) and the markings under updates.
type Engine struct {
	g       *graph.Graph
	ast     *rex.Ast
	nfa     *rex.NFA
	marks   map[graph.NodeID]*sourceMark
	matches map[Pair]struct{}
	// srcAt[v][u] counts the states s for which source u has an entry at
	// node v. It is the inverted index that lets Apply repair only the
	// sources whose markings an update can possibly touch, keeping the
	// cost proportional to AFF rather than to the number of sources.
	srcAt map[graph.NodeID]map[graph.NodeID]int
	meter *cost.Meter
}

// NewEngine compiles the query and runs the batch algorithm RPQ_NFA.
// The meter may be nil.
func NewEngine(g *graph.Graph, ast *rex.Ast, meter *cost.Meter) (*Engine, error) {
	if ast == nil {
		return nil, fmt.Errorf("rpq: nil query")
	}
	if err := ast.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		g:       g,
		ast:     ast,
		nfa:     rex.Compile(ast),
		marks:   make(map[graph.NodeID]*sourceMark),
		matches: make(map[Pair]struct{}),
		srcAt:   make(map[graph.NodeID]map[graph.NodeID]int),
		meter:   meter,
	}
	var d Delta
	g.Nodes(func(u graph.NodeID, _ string) bool {
		e.ensureSourceAndSettle(u, &d)
		return true
	})
	return e, nil
}

// Parse is a convenience wrapper: NewEngine with a textual query.
func Parse(g *graph.Graph, query string, meter *cost.Meter) (*Engine, error) {
	ast, err := rex.Parse(query)
	if err != nil {
		return nil, err
	}
	return NewEngine(g, ast, meter)
}

// ensureSourceAndSettle creates the seed entries of source u (when u can
// start a word of L(Q)) and runs the product BFS/settle from them. It is
// used both by the batch build and for nodes introduced by insertions.
func (e *Engine) ensureSourceAndSettle(u graph.NodeID, d *Delta) {
	q := e.seedSource(u, d)
	if q != nil {
		e.settle(u, q, d)
		e.meter.AddHeapOps(q.Ops)
	}
}

// seedSource installs the seed entries of u and returns a queue containing
// them, or nil when u is not a source. Calling it again is a no-op.
func (e *Engine) seedSource(u graph.NodeID, d *Delta) *pq.Heap[key] {
	if _, done := e.marks[u]; done {
		return nil
	}
	starts := e.nfa.NextID(e.nfa.Start(), e.g.LabelIDAt(u))
	if len(starts) == 0 {
		return nil
	}
	sm := &sourceMark{table: make(map[key]*entry), acc: make(map[graph.NodeID]int)}
	e.marks[u] = sm
	q := pq.New[key]()
	for _, s := range starts {
		k := key{u, s}
		sm.table[k] = &entry{
			dist: 0,
			seed: true,
			cpre: make(map[key]struct{}),
			mpre: make(map[key]struct{}),
		}
		e.meter.AddEntries(1)
		e.noteEntryCreated(u, k, d)
		q.Push(k, 0)
	}
	return q
}

// noteEntryCreated maintains the inverted index, the acc counts and the
// match set when an entry appears.
func (e *Engine) noteEntryCreated(u graph.NodeID, k key, d *Delta) {
	at := e.srcAt[k.v]
	if at == nil {
		at = make(map[graph.NodeID]int)
		e.srcAt[k.v] = at
	}
	at[u]++
	if !e.nfa.Accepting(k.s) {
		return
	}
	sm := e.marks[u]
	sm.acc[k.v]++
	if sm.acc[k.v] == 1 {
		p := Pair{u, k.v}
		e.matches[p] = struct{}{}
		if d != nil {
			d.note(p, true)
		}
	}
}

// noteEntryRemoved is the inverse of noteEntryCreated.
func (e *Engine) noteEntryRemoved(u graph.NodeID, k key, d *Delta) {
	if at := e.srcAt[k.v]; at != nil {
		at[u]--
		if at[u] == 0 {
			delete(at, u)
			if len(at) == 0 {
				delete(e.srcAt, k.v)
			}
		}
	}
	if !e.nfa.Accepting(k.s) {
		return
	}
	sm := e.marks[u]
	sm.acc[k.v]--
	if sm.acc[k.v] == 0 {
		delete(sm.acc, k.v)
		p := Pair{u, k.v}
		delete(e.matches, p)
		if d != nil {
			d.note(p, false)
		}
	}
}

// settle runs the shared priority-queue phase: it pops product nodes in
// nondecreasing distance order and relaxes their product successors,
// creating entries on first reach (Fig. 5 line 9). With all-zero seeds this
// is exactly the batch BFS of RPQ_NFA.
func (e *Engine) settle(u graph.NodeID, q *pq.Heap[key], d *Delta) {
	sm := e.marks[u]
	for q.Len() > 0 {
		k, dist, _ := q.Pop()
		e.meter.AddNodes(1)
		ent := sm.table[k]
		if ent == nil || ent.dist != dist {
			continue // superseded
		}
		// The queue is monotone, so every cpre member with distance below
		// dist is final: mpre can be decided exactly, once, right here.
		ent.mpre = make(map[key]struct{}, len(ent.cpre))
		for p := range ent.cpre {
			e.meter.AddEdges(1)
			if pe := sm.table[p]; pe != nil && pe.dist+1 == dist {
				ent.mpre[p] = struct{}{}
			}
		}
		e.g.Successors(k.v, func(y graph.NodeID) bool {
			e.meter.AddEdges(1)
			for _, sy := range e.nfa.NextID(k.s, e.g.LabelIDAt(y)) {
				ky := key{y, sy}
				ey := sm.table[ky]
				cand := dist + 1
				switch {
				case ey == nil:
					ey = &entry{
						dist: cand,
						cpre: map[key]struct{}{k: {}},
						mpre: map[key]struct{}{k: {}},
					}
					sm.table[ky] = ey
					e.meter.AddEntries(1)
					e.noteEntryCreated(u, ky, d)
					q.Push(ky, cand)
				case cand < ey.dist:
					ey.dist = cand
					ey.cpre[k] = struct{}{}
					ey.mpre = map[key]struct{}{k: {}}
					e.meter.AddEntries(1)
					q.Push(ky, cand)
				case cand == ey.dist:
					ey.cpre[k] = struct{}{}
					ey.mpre[k] = struct{}{}
				default:
					ey.cpre[k] = struct{}{}
				}
			}
			return true
		})
	}
}

// Graph returns the underlying graph (shared, mutated by Apply*).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Query returns the compiled query.
func (e *Engine) Query() *rex.Ast { return e.ast }

// NumMatches returns |Q(G)|.
func (e *Engine) NumMatches() int { return len(e.matches) }

// HasMatch reports whether (src, dst) ∈ Q(G).
func (e *Engine) HasMatch(src, dst graph.NodeID) bool {
	_, ok := e.matches[Pair{src, dst}]
	return ok
}

// Matches returns Q(G) sorted by (Src, Dst).
func (e *Engine) Matches() []Pair {
	out := make([]Pair, 0, len(e.matches))
	for p := range e.matches {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// BatchAnswer evaluates Q(G) from scratch and returns the match set: the
// RPQ_NFA baseline of the experiments.
func BatchAnswer(g *graph.Graph, ast *rex.Ast, meter *cost.Meter) ([]Pair, error) {
	e, err := NewEngine(g, ast, meter)
	if err != nil {
		return nil, err
	}
	return e.Matches(), nil
}

// Dist returns the shortest product distance recorded for (src, dst, s),
// or false when no marking exists. Tests use it to inspect pmark_e.
func (e *Engine) Dist(src, dst graph.NodeID, s int) (int, bool) {
	sm := e.marks[src]
	if sm == nil {
		return 0, false
	}
	ent := sm.table[key{dst, s}]
	if ent == nil {
		return 0, false
	}
	return ent.dist, true
}

// Check audits the engine against a fresh batch build: identical marking
// tables (keys, distances, cpre and mpre sets) and identical match sets.
func (e *Engine) Check() error {
	fresh, err := NewEngine(e.g.Clone(), e.ast, nil)
	if err != nil {
		return err
	}
	if len(fresh.marks) != len(e.marks) {
		return fmt.Errorf("rpq: %d source tables, batch rebuild has %d", len(e.marks), len(fresh.marks))
	}
	for u, sm := range e.marks {
		fm := fresh.marks[u]
		if fm == nil {
			return fmt.Errorf("rpq: spurious source table for %d", u)
		}
		if len(fm.table) != len(sm.table) {
			return fmt.Errorf("rpq: source %d has %d entries, batch has %d", u, len(sm.table), len(fm.table))
		}
		for k, ent := range sm.table {
			fe := fm.table[k]
			if fe == nil {
				return fmt.Errorf("rpq: source %d: spurious entry %v", u, k)
			}
			if fe.dist != ent.dist {
				return fmt.Errorf("rpq: source %d entry %v: dist %d, batch says %d", u, k, ent.dist, fe.dist)
			}
			if ent.seed != fe.seed {
				return fmt.Errorf("rpq: source %d entry %v: seed flag differs", u, k)
			}
			if err := sameKeySet(ent.cpre, fe.cpre); err != nil {
				return fmt.Errorf("rpq: source %d entry %v cpre: %v", u, k, err)
			}
			if err := sameKeySet(ent.mpre, fe.mpre); err != nil {
				return fmt.Errorf("rpq: source %d entry %v mpre: %v", u, k, err)
			}
		}
		if len(fm.acc) != len(sm.acc) {
			return fmt.Errorf("rpq: source %d acc size differs", u)
		}
		for v, n := range sm.acc {
			if fm.acc[v] != n {
				return fmt.Errorf("rpq: source %d acc[%d] = %d, batch says %d", u, v, n, fm.acc[v])
			}
		}
	}
	if len(fresh.matches) != len(e.matches) {
		return fmt.Errorf("rpq: %d matches, batch has %d", len(e.matches), len(fresh.matches))
	}
	for p := range e.matches {
		if _, ok := fresh.matches[p]; !ok {
			return fmt.Errorf("rpq: spurious match %v", p)
		}
	}
	// The inverted index must count entries exactly.
	wantAt := make(map[graph.NodeID]map[graph.NodeID]int)
	for u, sm := range e.marks {
		for k := range sm.table {
			at := wantAt[k.v]
			if at == nil {
				at = make(map[graph.NodeID]int)
				wantAt[k.v] = at
			}
			at[u]++
		}
	}
	if len(wantAt) != len(e.srcAt) {
		return fmt.Errorf("rpq: inverted index covers %d nodes, want %d", len(e.srcAt), len(wantAt))
	}
	for v, at := range wantAt {
		got := e.srcAt[v]
		if len(got) != len(at) {
			return fmt.Errorf("rpq: inverted index at node %d has %d sources, want %d", v, len(got), len(at))
		}
		for u, n := range at {
			if got[u] != n {
				return fmt.Errorf("rpq: inverted index at node %d source %d = %d, want %d", v, u, got[u], n)
			}
		}
	}
	return nil
}

func sameKeySet(a, b map[key]struct{}) error {
	if len(a) != len(b) {
		return fmt.Errorf("size %d vs %d", len(a), len(b))
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return fmt.Errorf("extra member %v", k)
		}
	}
	return nil
}
