// Package rpq implements regular path queries (RPQ, Section 2.1 of Fan,
// Hu & Tian, SIGMOD 2017) and their incrementalization (Section 5.2).
//
// The batch algorithm RPQ_NFA [29,33] compiles the query to an ε-free NFA
// M_Q and, for every source node u whose label can start a word of L(Q),
// runs a BFS over the intersection (product) graph of G and M_Q. A match
// (u, w) holds when some product node (w, s) with s accepting is reachable
// from u's seed states.
//
// The auxiliary structure is the marking pmark_e: per source u, node v and
// state s an entry (dist, cpre, mpre), where dist is the shortest product
// distance from u's seeds, cpre the product predecessors that carry
// entries, and mpre the subset on shortest paths. IncRPQ (Fig. 5) repairs
// these markings: identAff walks mpre supports broken by deletions,
// potentials are recomputed from unaffected cpre members, insertions seed
// the same per-source priority queue, and a Dijkstra-style settle decides
// every affected distance at most once — the cost profile that makes IncRPQ
// bounded relative to RPQ_NFA.
package rpq

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"incgraph/internal/cost"
	"incgraph/internal/graph"
	"incgraph/internal/pq"
	"incgraph/internal/rex"
)

// Unreachable is the distance of entries scheduled for removal.
const Unreachable = int(1) << 30

// Pair is a query answer: Dst is reachable from Src along a path whose
// label string is in L(Q).
type Pair struct {
	Src, Dst graph.NodeID
}

// key identifies a product node (graph node, NFA state) within one source's
// marking table.
type key struct {
	v graph.NodeID
	s int
}

// entry is one pmark_e record.
type entry struct {
	dist int
	// seed marks source entries (u, s) with s ∈ δ(s0, l(u)); they have
	// dist 0 and are never affected by updates.
	seed bool
	// cpre holds the product predecessors of this node that carry entries.
	cpre map[key]struct{}
	// mpre holds the cpre members on shortest product paths
	// (dist(pred) + 1 == dist).
	mpre map[key]struct{}
}

// sourceMark is the marking table of one source node.
type sourceMark struct {
	table map[key]*entry
	// acc counts, per target node, how many accepting states carry entries;
	// the source matches the target iff acc > 0.
	acc map[graph.NodeID]int
}

// Engine maintains Q(G) and the markings under updates.
type Engine struct {
	g       *graph.Graph
	ast     *rex.Ast
	nfa     *rex.NFA
	marks   map[graph.NodeID]*sourceMark
	matches map[Pair]struct{}
	// srcAt[v][u] counts the states s for which source u has an entry at
	// node v. It is the inverted index that lets Apply repair only the
	// sources whose markings an update can possibly touch, keeping the
	// cost proportional to AFF rather than to the number of sources.
	srcAt map[graph.NodeID]map[graph.NodeID]int
	// sorted memoizes Matches against the graph mutation generation (the
	// match set only moves inside Apply, which mutates the graph first).
	sorted graph.GenCache[[]Pair]
	meter  *cost.Meter
}

// NewEngine compiles the query and runs the batch algorithm RPQ_NFA.
// The meter may be nil.
//
// Each source node's product BFS touches only that source's marking table,
// so the evaluation fans out per source across g.Parallelism() workers.
// Engine-global state — the inverted index, the match set — is updated by
// a serial merge of per-source buffers afterwards, in source order, making
// the built engine identical to a sequential evaluation.
func NewEngine(g *graph.Graph, ast *rex.Ast, meter *cost.Meter) (*Engine, error) {
	if ast == nil {
		return nil, fmt.Errorf("rpq: nil query")
	}
	if err := ast.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		g:       g,
		ast:     ast,
		nfa:     rex.Compile(ast),
		marks:   make(map[graph.NodeID]*sourceMark),
		matches: make(map[Pair]struct{}),
		srcAt:   make(map[graph.NodeID]map[graph.NodeID]int),
		meter:   meter,
	}
	workers := g.Parallelism()
	if workers > 1 {
		g.PrepareConcurrentReads()
	}
	// Sources in ascending order, collected and sorted per shard across
	// the worker pool (identical output to NodesSorted).
	sources := g.NodesSortedParallel()
	reps := make([]*srcRepair, len(sources))
	meters := make([]cost.Meter, workers)
	graph.ParallelFor(workers, len(sources), func(worker, i int) {
		reps[i] = e.buildSource(sources[i], &meters[worker])
	})
	for _, r := range reps {
		e.mergeRepair(r, nil)
	}
	for i := range meters {
		meter.Merge(&meters[i])
	}
	return e, nil
}

// Parse is a convenience wrapper: NewEngine with a textual query.
func Parse(g *graph.Graph, query string, meter *cost.Meter) (*Engine, error) {
	ast, err := rex.Parse(query)
	if err != nil {
		return nil, err
	}
	return NewEngine(g, ast, meter)
}

// srcRepair is the worker-local context of one source's batch build or
// incremental repair. All mutations land in the source's own marking table
// (sm), the worker's private meter, a local Delta, and an event log of
// entry creations/removals; engine-global state (marks, srcAt, matches) is
// untouched until the serial mergeRepair, so any number of srcRepairs can
// run concurrently against the read-shared graph.
type srcRepair struct {
	e     *Engine
	src   graph.NodeID
	sm    *sourceMark
	meter *cost.Meter
	// d accumulates this source's match transitions (net of transients).
	d Delta
	// events defers the inverted-index updates of noteCreated/noteRemoved.
	events []entryEvent
}

// entryEvent records one entry creation or removal for deferred replay
// into the engine's inverted index.
type entryEvent struct {
	k       key
	created bool
}

// buildSource computes the marking table of source u from scratch: seed
// entries for the states δ(s0, l(u)), then the product BFS/settle. It
// returns nil when u is not a source. Used by the batch build and for
// nodes introduced by insertions; the caller must mergeRepair the result.
func (e *Engine) buildSource(u graph.NodeID, meter *cost.Meter) *srcRepair {
	starts := e.nfa.NextID(e.nfa.Start(), e.g.LabelIDAt(u))
	if len(starts) == 0 {
		return nil
	}
	r := &srcRepair{
		e:     e,
		src:   u,
		sm:    &sourceMark{table: make(map[key]*entry), acc: make(map[graph.NodeID]int)},
		meter: meter,
	}
	q := pq.New[key]()
	for _, s := range starts {
		k := key{u, s}
		r.sm.table[k] = &entry{
			dist: 0,
			seed: true,
			cpre: make(map[key]struct{}),
			mpre: make(map[key]struct{}),
		}
		meter.AddEntries(1)
		r.noteCreated(k)
		q.Push(k, 0)
	}
	r.settle(q)
	meter.AddHeapOps(q.Ops)
	return r
}

// noteCreated maintains the source-local acc counts and match transitions
// when an entry appears, and defers the inverted-index update.
func (r *srcRepair) noteCreated(k key) {
	r.events = append(r.events, entryEvent{k, true})
	if !r.e.nfa.Accepting(k.s) {
		return
	}
	r.sm.acc[k.v]++
	if r.sm.acc[k.v] == 1 {
		r.d.note(Pair{r.src, k.v}, true)
	}
}

// noteRemoved is the inverse of noteCreated.
func (r *srcRepair) noteRemoved(k key) {
	r.events = append(r.events, entryEvent{k, false})
	if !r.e.nfa.Accepting(k.s) {
		return
	}
	r.sm.acc[k.v]--
	if r.sm.acc[k.v] == 0 {
		delete(r.sm.acc, k.v)
		r.d.note(Pair{r.src, k.v}, false)
	}
}

// mergeRepair folds a worker's deferred global effects into the engine:
// the source table (when newly built), the inverted-index events, and the
// net match transitions (also noted on d when non-nil). Merging is serial
// and, because distinct sources produce disjoint pairs and commutative
// index increments, order-independent — the merged engine matches a
// sequential run exactly.
func (e *Engine) mergeRepair(r *srcRepair, d *Delta) {
	if r == nil {
		return
	}
	if _, ok := e.marks[r.src]; !ok {
		e.marks[r.src] = r.sm
	}
	for _, ev := range r.events {
		if ev.created {
			at := e.srcAt[ev.k.v]
			if at == nil {
				at = make(map[graph.NodeID]int)
				e.srcAt[ev.k.v] = at
			}
			at[r.src]++
		} else if at := e.srcAt[ev.k.v]; at != nil {
			at[r.src]--
			if at[r.src] == 0 {
				delete(at, r.src)
				if len(at) == 0 {
					delete(e.srcAt, ev.k.v)
				}
			}
		}
	}
	for p, added := range r.d.pending {
		if added {
			e.matches[p] = struct{}{}
		} else {
			delete(e.matches, p)
		}
		if d != nil {
			d.note(p, added)
		}
	}
}

// settle runs the shared priority-queue phase: it pops product nodes in
// nondecreasing distance order and relaxes their product successors,
// creating entries on first reach (Fig. 5 line 9). With all-zero seeds this
// is exactly the batch BFS of RPQ_NFA.
func (r *srcRepair) settle(q *pq.Heap[key]) {
	e, sm := r.e, r.sm
	for q.Len() > 0 {
		k, dist, _ := q.Pop()
		r.meter.AddNodes(1)
		ent := sm.table[k]
		if ent == nil || ent.dist != dist {
			continue // superseded
		}
		// The queue is monotone, so every cpre member with distance below
		// dist is final: mpre can be decided exactly, once, right here.
		ent.mpre = make(map[key]struct{}, len(ent.cpre))
		for p := range ent.cpre {
			r.meter.AddEdges(1)
			if pe := sm.table[p]; pe != nil && pe.dist+1 == dist {
				ent.mpre[p] = struct{}{}
			}
		}
		e.g.Successors(k.v, func(y graph.NodeID) bool {
			r.meter.AddEdges(1)
			for _, sy := range e.nfa.NextID(k.s, e.g.LabelIDAt(y)) {
				ky := key{y, sy}
				ey := sm.table[ky]
				cand := dist + 1
				switch {
				case ey == nil:
					ey = &entry{
						dist: cand,
						cpre: map[key]struct{}{k: {}},
						mpre: map[key]struct{}{k: {}},
					}
					sm.table[ky] = ey
					r.meter.AddEntries(1)
					r.noteCreated(ky)
					q.Push(ky, cand)
				case cand < ey.dist:
					ey.dist = cand
					ey.cpre[k] = struct{}{}
					ey.mpre = map[key]struct{}{k: {}}
					r.meter.AddEntries(1)
					q.Push(ky, cand)
				case cand == ey.dist:
					ey.cpre[k] = struct{}{}
					ey.mpre[k] = struct{}{}
				default:
					ey.cpre[k] = struct{}{}
				}
			}
			return true
		})
	}
}

// Graph returns the underlying graph (shared, mutated by Apply*).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Query returns the compiled query.
func (e *Engine) Query() *rex.Ast { return e.ast }

// NumMatches returns |Q(G)|.
func (e *Engine) NumMatches() int { return len(e.matches) }

// HasMatch reports whether (src, dst) ∈ Q(G).
func (e *Engine) HasMatch(src, dst graph.NodeID) bool {
	_, ok := e.matches[Pair{src, dst}]
	return ok
}

// Matches returns Q(G) sorted by (Src, Dst). The slice is memoized
// against the graph's mutation generation — repeated calls between
// updates are O(1) — and shared: treat it as read-only; it is valid
// until the next Apply*.
func (e *Engine) Matches() []Pair {
	return e.sorted.Get(e.g, func() []Pair {
		out := make([]Pair, 0, len(e.matches))
		for p := range e.matches {
			out = append(out, p)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Src != out[j].Src {
				return out[i].Src < out[j].Src
			}
			return out[i].Dst < out[j].Dst
		})
		return out
	})
}

// WriteAnswer serializes Q(G) in canonical text form: one line per match,
// "pair <src> <dst>", sorted by (Src, Dst). Identical answers produce
// identical bytes regardless of how they were computed (build, repair, or
// recovery replay); the durability layer's parity checks and the incgraphd
// answer dumps rely on this. Safe under the read-share contract.
func (e *Engine) WriteAnswer(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, p := range e.Matches() {
		if _, err := fmt.Fprintf(bw, "pair %d %d\n", p.Src, p.Dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BatchAnswer evaluates Q(G) from scratch and returns the match set: the
// RPQ_NFA baseline of the experiments.
func BatchAnswer(g *graph.Graph, ast *rex.Ast, meter *cost.Meter) ([]Pair, error) {
	e, err := NewEngine(g, ast, meter)
	if err != nil {
		return nil, err
	}
	return e.Matches(), nil
}

// Dist returns the shortest product distance recorded for (src, dst, s),
// or false when no marking exists. Tests use it to inspect pmark_e.
func (e *Engine) Dist(src, dst graph.NodeID, s int) (int, bool) {
	sm := e.marks[src]
	if sm == nil {
		return 0, false
	}
	ent := sm.table[key{dst, s}]
	if ent == nil {
		return 0, false
	}
	return ent.dist, true
}

// Check audits the engine against a fresh batch build: identical marking
// tables (keys, distances, cpre and mpre sets) and identical match sets.
func (e *Engine) Check() error {
	fresh, err := NewEngine(e.g.Clone(), e.ast, nil)
	if err != nil {
		return err
	}
	if len(fresh.marks) != len(e.marks) {
		return fmt.Errorf("rpq: %d source tables, batch rebuild has %d", len(e.marks), len(fresh.marks))
	}
	for u, sm := range e.marks {
		fm := fresh.marks[u]
		if fm == nil {
			return fmt.Errorf("rpq: spurious source table for %d", u)
		}
		if len(fm.table) != len(sm.table) {
			return fmt.Errorf("rpq: source %d has %d entries, batch has %d", u, len(sm.table), len(fm.table))
		}
		for k, ent := range sm.table {
			fe := fm.table[k]
			if fe == nil {
				return fmt.Errorf("rpq: source %d: spurious entry %v", u, k)
			}
			if fe.dist != ent.dist {
				return fmt.Errorf("rpq: source %d entry %v: dist %d, batch says %d", u, k, ent.dist, fe.dist)
			}
			if ent.seed != fe.seed {
				return fmt.Errorf("rpq: source %d entry %v: seed flag differs", u, k)
			}
			if err := sameKeySet(ent.cpre, fe.cpre); err != nil {
				return fmt.Errorf("rpq: source %d entry %v cpre: %v", u, k, err)
			}
			if err := sameKeySet(ent.mpre, fe.mpre); err != nil {
				return fmt.Errorf("rpq: source %d entry %v mpre: %v", u, k, err)
			}
		}
		if len(fm.acc) != len(sm.acc) {
			return fmt.Errorf("rpq: source %d acc size differs", u)
		}
		for v, n := range sm.acc {
			if fm.acc[v] != n {
				return fmt.Errorf("rpq: source %d acc[%d] = %d, batch says %d", u, v, n, fm.acc[v])
			}
		}
	}
	if len(fresh.matches) != len(e.matches) {
		return fmt.Errorf("rpq: %d matches, batch has %d", len(e.matches), len(fresh.matches))
	}
	for p := range e.matches {
		if _, ok := fresh.matches[p]; !ok {
			return fmt.Errorf("rpq: spurious match %v", p)
		}
	}
	// The inverted index must count entries exactly.
	wantAt := make(map[graph.NodeID]map[graph.NodeID]int)
	for u, sm := range e.marks {
		for k := range sm.table {
			at := wantAt[k.v]
			if at == nil {
				at = make(map[graph.NodeID]int)
				wantAt[k.v] = at
			}
			at[u]++
		}
	}
	if len(wantAt) != len(e.srcAt) {
		return fmt.Errorf("rpq: inverted index covers %d nodes, want %d", len(e.srcAt), len(wantAt))
	}
	for v, at := range wantAt {
		got := e.srcAt[v]
		if len(got) != len(at) {
			return fmt.Errorf("rpq: inverted index at node %d has %d sources, want %d", v, len(got), len(at))
		}
		for u, n := range at {
			if got[u] != n {
				return fmt.Errorf("rpq: inverted index at node %d source %d = %d, want %d", v, u, got[u], n)
			}
		}
	}
	return nil
}

func sameKeySet(a, b map[key]struct{}) error {
	if len(a) != len(b) {
		return fmt.Errorf("size %d vs %d", len(a), len(b))
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return fmt.Errorf("extra member %v", k)
		}
	}
	return nil
}
