// Package gen provides the workload machinery of the experimental study
// (Section 6): synthetic graph generation, scaled-down simulations of the
// paper's real-life datasets (DBpedia and LiveJournal — see DESIGN.md §5
// for the substitution rationale), random update streams ΔG controlled by
// size and insert/delete ratio ρ, and query generators for KWS, RPQ and
// ISO controlled by the same parameters the paper varies.
package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"incgraph/internal/graph"
	"incgraph/internal/iso"
	"incgraph/internal/kws"
	"incgraph/internal/rex"
)

// GraphSpec describes a synthetic graph.
type GraphSpec struct {
	// Nodes and Edges are |V| and |E|.
	Nodes, Edges int
	// Labels is |Σ|; labels are "l0" … "l{Labels-1}", assigned uniformly
	// unless ZipfLabels is set.
	Labels int
	// ZipfLabels assigns label i with probability ∝ 1/(i+1), matching the
	// heavy-hitter label distributions of real graphs (DBpedia's "person",
	// "place", … dominate). Without skew, uniformly random labels make
	// every multi-label query so selective that neither batch nor
	// incremental evaluation does measurable work.
	ZipfLabels bool
	// GiantSCCFrac, when positive, threads a directed cycle through that
	// fraction of the nodes so the graph contains a giant strongly
	// connected component (LiveJournal's is ~77% of |G|, Exp-1(3)).
	GiantSCCFrac float64
	// AcyclicBias is the probability that a random edge is forced to point
	// from a higher to a lower node ID, yielding the mostly-acyclic,
	// small-SCC structure of knowledge graphs like DBpedia (0 = uniform).
	// The remaining edges are short-range (within a small ID window), so
	// the cycles that do form are small, dense, locally-clustered SCCs —
	// robust to single-edge deletions, like real knowledge-graph cycles —
	// rather than one fragile giant core.
	AcyclicBias float64
	// Seed drives the deterministic RNG.
	Seed int64
}

// LabelName returns the i-th label name.
func LabelName(i int) string { return fmt.Sprintf("l%d", i) }

// Synthetic generates a graph per spec. Edge endpoints are uniform; the
// giant-SCC cycle edges count toward the edge budget.
func Synthetic(spec GraphSpec) *graph.Graph {
	rng := rand.New(rand.NewSource(spec.Seed))
	g := graph.New()
	pickLabel := func() int { return rng.Intn(max(1, spec.Labels)) }
	if spec.ZipfLabels {
		k := max(1, spec.Labels)
		cum := make([]float64, k)
		total := 0.0
		for i := 0; i < k; i++ {
			total += 1 / float64(i+1)
			cum[i] = total
		}
		pickLabel = func() int {
			x := rng.Float64() * total
			lo, hi := 0, k-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cum[mid] < x {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return lo
		}
	}
	for i := 0; i < spec.Nodes; i++ {
		g.AddNode(graph.NodeID(i), LabelName(pickLabel()))
	}
	if spec.GiantSCCFrac > 0 && spec.Nodes > 1 {
		k := int(float64(spec.Nodes) * spec.GiantSCCFrac)
		if k > spec.Nodes {
			k = spec.Nodes
		}
		// Two independently-permuted cycles through the same member set:
		// the giant component is 2-edge-connected, so single deletions
		// rarely sever members — matching the robustness of real social
		// graphs' giant SCCs.
		members := rng.Perm(spec.Nodes)[:k]
		for pass := 0; pass < 2; pass++ {
			order := make([]int, k)
			copy(order, members)
			rng.Shuffle(k, func(i, j int) { order[i], order[j] = order[j], order[i] })
			for i := 0; i < k; i++ {
				g.AddEdge(graph.NodeID(order[i]), graph.NodeID(order[(i+1)%k]))
			}
		}
	}
	for tries := 0; g.NumEdges() < spec.Edges && tries < 20*spec.Edges; tries++ {
		v := graph.NodeID(rng.Intn(spec.Nodes))
		var w graph.NodeID
		switch {
		case spec.AcyclicBias <= 0:
			w = graph.NodeID(rng.Intn(spec.Nodes))
		case rng.Float64() < spec.AcyclicBias:
			// Forward edge (higher → lower ID): never creates a cycle.
			w = graph.NodeID(rng.Intn(spec.Nodes))
			if v < w {
				v, w = w, v
			}
		default:
			// Short-range edge within a small ID window: small dense SCCs.
			off := graph.NodeID(1 + rng.Intn(8))
			if rng.Intn(2) == 0 {
				off = -off
			}
			w = v + off
			if w < 0 || int(w) >= spec.Nodes {
				continue
			}
		}
		if v == w {
			continue
		}
		g.AddEdge(v, w)
	}
	return g
}

// Dataset returns one of the named workload graphs at the given scale
// (1.0 = the default benchmark size; the paper's originals are 2–3 orders
// of magnitude larger, see DESIGN.md §5(1)).
//
//	dbpedia   — 495 labels, E/V ≈ 3, mostly acyclic (knowledge graph)
//	livej     — 100 labels, E/V ≈ 5, giant scc through 77% of nodes
//	synthetic — 100 labels, E/V = 2, mildly acyclic
func Dataset(name string, scale float64, seed int64) (*graph.Graph, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("gen: scale must be positive, got %g", scale)
	}
	switch strings.ToLower(name) {
	case "dbpedia":
		n := int(20000 * scale)
		return Synthetic(GraphSpec{Nodes: n, Edges: 3 * n, Labels: 495, ZipfLabels: true, AcyclicBias: 0.95, Seed: seed}), nil
	case "livej":
		n := int(20000 * scale)
		return Synthetic(GraphSpec{Nodes: n, Edges: 5 * n, Labels: 100, ZipfLabels: true, GiantSCCFrac: 0.77, Seed: seed}), nil
	case "synthetic":
		n := int(25000 * scale)
		return Synthetic(GraphSpec{Nodes: n, Edges: 2 * n, Labels: 100, ZipfLabels: true, AcyclicBias: 0.8, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("gen: unknown dataset %q (want dbpedia, livej or synthetic)", name)
	}
}

// UpdateSpec describes a random batch ΔG.
type UpdateSpec struct {
	// Count is |ΔG| in unit updates.
	Count int
	// InsertRatio is ρ/(1+ρ) where ρ is the paper's insertions:deletions
	// ratio; 0.5 reproduces ρ = 1 (graph size stays stable).
	InsertRatio float64
	// Locality is the probability that an insertion is topology-respecting
	// — a 2-hop shortcut v→w along an existing path v→x→w — rather than a
	// uniform random pair. Real-world edge arrivals are overwhelmingly
	// local (new links attach near existing structure); shortcut edges
	// also never violate topological ranks, which is what lets IncSCC's
	// counter fast path dominate as it does in the paper's measurements.
	Locality float64
	// Seed drives the deterministic RNG.
	Seed int64
}

// Updates builds a batch that is valid when applied to g in order.
// Deletions pick existing edges uniformly; insertions pick fresh edges
// between existing nodes. The generator simulates the batch on a clone, so
// g itself is not modified.
func Updates(g *graph.Graph, spec UpdateSpec) graph.Batch {
	rng := rand.New(rand.NewSource(spec.Seed))
	sim := g.Clone()
	nodes := sim.NodesSorted()
	// EdgesSorted hands out the graph-owned memoized slice; copy it, since
	// the pool below is mutated in place (swap-deletes).
	edges := append([]graph.Edge(nil), sim.EdgesSorted()...)
	batch := make(graph.Batch, 0, spec.Count)
	for len(batch) < spec.Count {
		if rng.Float64() < spec.InsertRatio || len(edges) == 0 {
			var v, w graph.NodeID
			if rng.Float64() < spec.Locality && len(edges) > 0 {
				// 2-hop shortcut along an existing path v→x→w.
				e := edges[rng.Intn(len(edges))]
				if !sim.HasEdge(e.From, e.To) {
					continue
				}
				v = e.From
				succ := sim.SuccessorsSorted(e.To)
				if len(succ) == 0 {
					continue
				}
				w = succ[rng.Intn(len(succ))]
			} else {
				v = nodes[rng.Intn(len(nodes))]
				w = nodes[rng.Intn(len(nodes))]
			}
			if v == w || sim.HasEdge(v, w) {
				continue
			}
			u := graph.Ins(v, w)
			sim.Apply(u)
			edges = append(edges, graph.Edge{From: v, To: w})
			batch = append(batch, u)
		} else {
			i := rng.Intn(len(edges))
			e := edges[i]
			if !sim.HasEdge(e.From, e.To) { // already deleted
				edges[i] = edges[len(edges)-1]
				edges = edges[:len(edges)-1]
				continue
			}
			u := graph.Del(e.From, e.To)
			sim.Apply(u)
			edges[i] = edges[len(edges)-1]
			edges = edges[:len(edges)-1]
			batch = append(batch, u)
		}
	}
	return batch
}

// labelHistogram returns the labels of g sorted by decreasing frequency.
// The counts come straight off the graph's inverted label index: O(|Σ|)
// rather than a full node scan.
func labelHistogram(g *graph.Graph) []string {
	count := make(map[string]int)
	labels := make([]string, 0, 64)
	g.Labels(func(l string, n int) bool {
		count[l] = n
		labels = append(labels, l)
		return true
	})
	sort.Slice(labels, func(i, j int) bool {
		if count[labels[i]] != count[labels[j]] {
			return count[labels[i]] > count[labels[j]]
		}
		return labels[i] < labels[j]
	})
	return labels
}

// KWSQuery samples a keyword query with m keywords drawn from the most
// frequent labels of g (so matches exist) and bound b.
func KWSQuery(g *graph.Graph, m, b int, seed int64) (kws.Query, error) {
	labels := labelHistogram(g)
	if len(labels) < m {
		return kws.Query{}, fmt.Errorf("gen: graph has %d labels, need %d keywords", len(labels), m)
	}
	rng := rand.New(rand.NewSource(seed))
	top := labels[:min(len(labels), 4*m)]
	perm := rng.Perm(len(top))
	kw := make([]string, m)
	for i := 0; i < m; i++ {
		kw[i] = top[perm[i]]
	}
	return kws.Query{Keywords: kw, Bound: b}, nil
}

// RPQQuery builds a random regular path expression with exactly size label
// occurrences over g's frequent labels, mixing concatenation, union and
// Kleene star the way the paper's generator varies ·, + and *.
func RPQQuery(g *graph.Graph, size int, seed int64) (*rex.Ast, error) {
	if size < 1 {
		return nil, fmt.Errorf("gen: query size must be ≥ 1")
	}
	labels := labelHistogram(g)
	if len(labels) == 0 {
		return nil, fmt.Errorf("gen: graph has no labels")
	}
	top := labels[:min(len(labels), 12)]
	rng := rand.New(rand.NewSource(seed))
	pick := func() *rex.Ast { return rex.Label(top[rng.Intn(len(top))]) }
	// Build `size` leaves, then combine with weighted operators.
	var build func(k int) *rex.Ast
	build = func(k int) *rex.Ast {
		if k == 1 {
			a := pick()
			if rng.Intn(4) == 0 {
				return rex.Rep(a)
			}
			return a
		}
		l := 1 + rng.Intn(k-1)
		left, right := build(l), build(k-l)
		switch rng.Intn(4) {
		case 0:
			return rex.Or(left, right)
		case 1:
			return rex.Cat(left, rex.Rep(right))
		default:
			return rex.Cat(left, right)
		}
	}
	return build(size), nil
}

// RPQDense builds the benchmark RPQ of the harness: first · (union)* · last
// over g's frequent labels, with `size` label occurrences in total. Unlike
// fully random expressions — whose language intersection with a uniformly
// labeled graph is almost always empty — the star over a label union keeps
// the product graph supercritical, so batch and incremental evaluation both
// do real work (see EXPERIMENTS.md).
func RPQDense(g *graph.Graph, size int, seed int64) (*rex.Ast, error) {
	if size < 3 {
		return RPQQuery(g, size, seed)
	}
	labels := labelHistogram(g)
	if len(labels) < 2 {
		return nil, fmt.Errorf("gen: need at least 2 labels")
	}
	rng := rand.New(rand.NewSource(seed))
	top := labels[:min(len(labels), size+2)]
	perm := rng.Perm(len(top))
	first := rex.Label(top[perm[0]])
	last := rex.Label(top[perm[1]])
	union := rex.Label(top[perm[2%len(perm)]])
	for i := 3; i < size && i < len(perm); i++ {
		union = rex.Or(union, rex.Label(top[perm[i]]))
	}
	return rex.Cat(first, rex.Cat(rex.Rep(union), last)), nil
}

// Relabel returns a copy of g with its alphabet folded down to k labels
// (label li → l(i mod k)). The RPQ benchmark panels use it to emulate the
// heavy-hitter label distributions of real knowledge graphs.
func Relabel(g *graph.Graph, k int) *graph.Graph {
	out := graph.New()
	g.Nodes(func(v graph.NodeID, l string) bool {
		var idx int
		fmt.Sscanf(l, "l%d", &idx)
		out.AddNode(v, LabelName(idx%k))
		return true
	})
	g.Edges(func(e graph.Edge) bool {
		out.AddEdge(e.From, e.To)
		return true
	})
	return out
}

// Densify adds k short-range edges (within a small node-ID window) to a
// copy of g, creating the locally clustered neighborhoods in which motif
// queries have non-trivial partial embeddings. The ISO benchmark panels use
// it because uniformly random sparse graphs contain essentially no dense
// motifs (clustering coefficient → 0), unlike real knowledge and social
// graphs.
func Densify(g *graph.Graph, k int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := g.Clone()
	nodes := out.NodesSorted()
	if len(nodes) < 3 {
		return out
	}
	for tries := 0; k > 0 && tries < 40*k; tries++ {
		v := nodes[rng.Intn(len(nodes))]
		off := graph.NodeID(1 + rng.Intn(6))
		if rng.Intn(2) == 0 {
			off = -off
		}
		w := v + off
		if !out.HasNode(w) || v == w || out.HasEdge(v, w) {
			continue
		}
		out.AddEdge(v, w)
		k--
	}
	return out
}

// ISOQuery generates a weakly connected pattern with vq nodes and eq edges
// whose shape follows the paper's (|V_Q|, |E_Q|, d_Q) parameterization: a
// backbone path of length d_Q guides the diameter, remaining nodes attach
// to random backbone positions, and extra edges are added up to eq.
// Labels are sampled from g's frequent labels.
func ISOQuery(g *graph.Graph, vq, eq, dq int, seed int64) (*iso.Pattern, error) {
	if vq < 1 {
		return nil, fmt.Errorf("gen: pattern needs at least one node")
	}
	if dq >= vq {
		dq = vq - 1
	}
	minEdges := vq - 1
	maxEdges := vq * (vq - 1)
	if eq < minEdges {
		eq = minEdges
	}
	if eq > maxEdges {
		eq = maxEdges
	}
	labels := labelHistogram(g)
	if len(labels) == 0 {
		return nil, fmt.Errorf("gen: graph has no labels")
	}
	top := labels[:min(len(labels), 4)]
	rng := rand.New(rand.NewSource(seed))
	pg := graph.New()
	for i := 0; i < vq; i++ {
		pg.AddNode(graph.NodeID(i), top[rng.Intn(len(top))])
	}
	// Backbone 0→1→…→dq.
	for i := 0; i < dq; i++ {
		pg.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	// Attach the rest.
	for i := dq + 1; i < vq; i++ {
		anchor := graph.NodeID(rng.Intn(i))
		if rng.Intn(2) == 0 {
			pg.AddEdge(anchor, graph.NodeID(i))
		} else {
			pg.AddEdge(graph.NodeID(i), anchor)
		}
	}
	for tries := 0; pg.NumEdges() < eq && tries < 50*eq; tries++ {
		v := graph.NodeID(rng.Intn(vq))
		w := graph.NodeID(rng.Intn(vq))
		if v == w {
			continue
		}
		pg.AddEdge(v, w)
	}
	return iso.NewPattern(pg)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
