package gen

import (
	"testing"

	"incgraph/internal/graph"
)

func TestSyntheticBasics(t *testing.T) {
	g := Synthetic(GraphSpec{Nodes: 500, Edges: 1200, Labels: 10, Seed: 1})
	if g.NumNodes() != 500 {
		t.Fatalf("|V| = %d", g.NumNodes())
	}
	if g.NumEdges() < 1100 { // collisions may leave it slightly short
		t.Fatalf("|E| = %d", g.NumEdges())
	}
	seen := map[string]bool{}
	g.Nodes(func(_ graph.NodeID, l string) bool {
		seen[l] = true
		return true
	})
	if len(seen) > 10 || len(seen) < 5 {
		t.Fatalf("labels used = %d", len(seen))
	}
	// Determinism.
	h := Synthetic(GraphSpec{Nodes: 500, Edges: 1200, Labels: 10, Seed: 1})
	if !g.Equal(h) {
		t.Fatalf("generator not deterministic")
	}
}

func TestGiantSCC(t *testing.T) {
	g := Synthetic(GraphSpec{Nodes: 1000, Edges: 3000, Labels: 5, GiantSCCFrac: 0.77, Seed: 2})
	// The threaded cycle guarantees ≥ 770 nodes in one scc; verify via a
	// reachability spot check along the cycle: count nodes on cycles is
	// hard here, so check edge count and strong connectivity of a sample
	// via the graph API in the scc package's tests instead. Here: sanity.
	if g.NumEdges() < 3000 {
		t.Fatalf("|E| = %d", g.NumEdges())
	}
}

func TestDatasets(t *testing.T) {
	for _, name := range []string{"dbpedia", "livej", "synthetic"} {
		g, err := Dataset(name, 0.05, 7)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
	}
	if _, err := Dataset("nope", 1, 0); err == nil {
		t.Fatalf("unknown dataset accepted")
	}
	if _, err := Dataset("dbpedia", -1, 0); err == nil {
		t.Fatalf("negative scale accepted")
	}
}

func TestUpdatesValidAndBalanced(t *testing.T) {
	g, _ := Dataset("synthetic", 0.02, 3)
	batch := Updates(g, UpdateSpec{Count: 400, InsertRatio: 0.5, Seed: 11})
	if len(batch) != 400 {
		t.Fatalf("|ΔG| = %d", len(batch))
	}
	ins, dels := batch.Split()
	if len(ins) == 0 || len(dels) == 0 {
		t.Fatalf("unbalanced batch: %d ins, %d dels", len(ins), len(dels))
	}
	// Validity: applying in order must succeed.
	if err := g.Clone().ApplyBatch(batch); err != nil {
		t.Fatalf("batch invalid: %v", err)
	}
	// Determinism.
	batch2 := Updates(g, UpdateSpec{Count: 400, InsertRatio: 0.5, Seed: 11})
	for i := range batch {
		if batch[i] != batch2[i] {
			t.Fatalf("update generator not deterministic at %d", i)
		}
	}
}

func TestUpdatesAllInsertsOrDeletes(t *testing.T) {
	g, _ := Dataset("synthetic", 0.01, 3)
	insOnly := Updates(g, UpdateSpec{Count: 50, InsertRatio: 1.0, Seed: 1})
	if _, dels := insOnly.Split(); len(dels) != 0 {
		t.Fatalf("ratio 1.0 produced deletions")
	}
	delOnly := Updates(g, UpdateSpec{Count: 50, InsertRatio: 0.0, Seed: 1})
	if ins, _ := delOnly.Split(); len(ins) != 0 {
		t.Fatalf("ratio 0.0 produced insertions")
	}
}

func TestKWSQueryGen(t *testing.T) {
	g, _ := Dataset("dbpedia", 0.02, 5)
	q, err := KWSQuery(g, 3, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Keywords) != 3 || q.Bound != 2 {
		t.Fatalf("query = %+v", q)
	}
	// Keywords must exist in the graph.
	for _, kw := range q.Keywords {
		if len(g.NodesWithLabel(kw)) == 0 {
			t.Fatalf("keyword %q not in graph", kw)
		}
	}
	tiny := graph.New()
	tiny.AddNode(0, "only")
	if _, err := KWSQuery(tiny, 3, 1, 0); err == nil {
		t.Fatalf("impossible keyword count accepted")
	}
}

func TestRPQQueryGen(t *testing.T) {
	g, _ := Dataset("livej", 0.02, 5)
	for _, size := range []int{1, 3, 5, 7} {
		ast, err := RPQQuery(g, size, int64(size))
		if err != nil {
			t.Fatal(err)
		}
		if ast.Size() != size {
			t.Fatalf("|Q| = %d, want %d (%s)", ast.Size(), size, ast)
		}
		if err := ast.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RPQQuery(g, 0, 0); err == nil {
		t.Fatalf("size 0 accepted")
	}
}

func TestISOQueryGen(t *testing.T) {
	g, _ := Dataset("dbpedia", 0.02, 5)
	for _, c := range [][3]int{{3, 5, 1}, {4, 6, 2}, {5, 7, 3}, {7, 9, 5}} {
		p, err := ISOQuery(g, c[0], c[1], c[2], 13)
		if err != nil {
			t.Fatal(err)
		}
		vq, eq := p.Size()
		if vq != c[0] {
			t.Fatalf("|V_Q| = %d, want %d", vq, c[0])
		}
		if eq < c[0]-1 {
			t.Fatalf("|E_Q| = %d too small", eq)
		}
		if p.Diameter() < 1 {
			t.Fatalf("diameter = %d", p.Diameter())
		}
	}
	if _, err := ISOQuery(g, 0, 0, 0, 0); err == nil {
		t.Fatalf("empty pattern accepted")
	}
}

func TestRPQDense(t *testing.T) {
	g, _ := Dataset("livej", 0.02, 5)
	for _, size := range []int{3, 4, 5, 7} {
		ast, err := RPQDense(g, size, int64(size))
		if err != nil {
			t.Fatal(err)
		}
		if ast.Size() > size {
			t.Fatalf("size %d: |Q| = %d (%s)", size, ast.Size(), ast)
		}
		if err := ast.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Small sizes fall back to the plain generator.
	ast, err := RPQDense(g, 2, 1)
	if err != nil || ast.Size() != 2 {
		t.Fatalf("fallback: %v %v", ast, err)
	}
}

func TestRelabel(t *testing.T) {
	g, _ := Dataset("dbpedia", 0.01, 5)
	h := Relabel(g, 4)
	if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("relabel changed structure")
	}
	seen := map[string]bool{}
	h.Nodes(func(_ graph.NodeID, l string) bool {
		seen[l] = true
		return true
	})
	if len(seen) > 4 {
		t.Fatalf("relabel left %d labels", len(seen))
	}
	// Original untouched.
	orig := map[string]bool{}
	g.Nodes(func(_ graph.NodeID, l string) bool {
		orig[l] = true
		return true
	})
	if len(orig) <= 4 {
		t.Fatalf("relabel mutated the input graph")
	}
}

func TestDensify(t *testing.T) {
	g, _ := Dataset("dbpedia", 0.01, 5)
	before := g.NumEdges()
	h := Densify(g, 100, 9)
	if h.NumEdges() < before+90 { // some window slots may collide
		t.Fatalf("densify added %d edges, want ~100", h.NumEdges()-before)
	}
	if g.NumEdges() != before {
		t.Fatalf("densify mutated the input graph")
	}
	// Tiny graphs are returned unchanged.
	tiny := graph.New()
	tiny.AddNode(0, "a")
	if Densify(tiny, 10, 1).NumEdges() != 0 {
		t.Fatalf("tiny densify added edges")
	}
}

func TestZipfLabelsSkew(t *testing.T) {
	g := Synthetic(GraphSpec{Nodes: 5000, Edges: 5000, Labels: 50, ZipfLabels: true, Seed: 4})
	counts := map[string]int{}
	g.Nodes(func(_ graph.NodeID, l string) bool {
		counts[l]++
		return true
	})
	if counts[LabelName(0)] <= counts[LabelName(10)] {
		t.Fatalf("no skew: l0=%d l10=%d", counts[LabelName(0)], counts[LabelName(10)])
	}
	// Heaviest label should hold a large share (≈ 1/H(50) ≈ 22%).
	if counts[LabelName(0)] < 500 {
		t.Fatalf("l0 share too small: %d", counts[LabelName(0)])
	}
}
