package store

import (
	"encoding/binary"
	"fmt"
	"sort"

	"incgraph/internal/graph"
)

// Shard parcels: the segment-streaming half of the snapshot format. A
// parcel is one shard's snapshot segment made self-contained — a label
// table restricted to the labels actually present on the shard, followed
// by the segment body in the exact encoding WriteSnapshot uses — so a
// single shard can be shipped between processes (cluster shard placement,
// rebalancing, resync after divergence) without dragging the whole
// snapshot along. Like snapshots, parcels are byte-deterministic:
// identical shard state produces identical parcels whichever process
// encoded it, which is what lets a coordinator verify a remote worker's
// copy by comparing parcel bytes.
//
// # Format
//
//	uvarint labelCount, then per label: uvarint byte length + bytes
//	        (sorted by string; segment node records reference labels by
//	        position in this table)
//	segment body, exactly as in the snapshot format (see package doc)
//
// Integrity framing (length, CRC) is the transport's job — the cluster
// RPC layer frames every message the same way the WAL frames records — so
// parcels carry no checksum of their own.

// EncodeShardParcel serializes shard s of g as a self-contained parcel.
// The graph must be read-shareable for the duration; distinct shards may
// be encoded concurrently.
func EncodeShardParcel(g *graph.Graph, s int) ([]byte, error) {
	if s < 0 || s >= g.NumShards() {
		return nil, fmt.Errorf("store: EncodeShardParcel: shard %d out of range [0,%d)", s, g.NumShards())
	}
	seen := make(map[graph.LabelID]struct{})
	g.ShardNodes(s, func(_ graph.NodeID, lid graph.LabelID) bool {
		seen[lid] = struct{}{}
		return true
	})
	labels := make([]string, 0, len(seen))
	for lid := range seen {
		labels = append(labels, graph.LabelOf(lid))
	}
	sort.Strings(labels)
	labelIdx := make(map[graph.LabelID]uint64, len(labels))
	buf := binary.AppendUvarint(nil, uint64(len(labels)))
	for i, l := range labels {
		id, ok := graph.LabelIDOf(l)
		if !ok {
			return nil, fmt.Errorf("store: EncodeShardParcel: label %q not interned", l)
		}
		labelIdx[id] = uint64(i)
		buf = binary.AppendUvarint(buf, uint64(len(l)))
		buf = append(buf, l...)
	}
	seg, err := encodeSegment(g, s, labelIdx)
	if err != nil {
		return nil, err
	}
	return append(buf, seg...), nil
}

// DecodeShardParcel parses a parcel into the ShardState of shard s for a
// graph of the given shard count, interning the carried labels into this
// process's table. The result feeds graph.LoadShard.
func DecodeShardParcel(buf []byte, s, shards int) (graph.ShardState, error) {
	var st graph.ShardState
	off := 0
	uvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	nLabels, ok := uvarint()
	if !ok || nLabels > uint64(len(buf)) {
		return st, fmt.Errorf("%w: parcel: bad label count", ErrBadSnapshot)
	}
	labels := make([]graph.LabelID, nLabels)
	for i := range labels {
		l, ok := uvarint()
		if !ok || l > uint64(len(buf)-off) {
			return st, fmt.Errorf("%w: parcel: truncated label table", ErrBadSnapshot)
		}
		labels[i] = graph.InternLabel(string(buf[off : off+int(l)]))
		off += int(l)
	}
	return decodeSegment(buf[off:], s, &snapHeader{labels: labels}, int64(shards))
}
