package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"incgraph/internal/graph"
)

// replRec builds a small replicated record for log tests.
func replRec(seq, gen uint64) ReplayRecord {
	return ReplayRecord{Seq: seq, Gen: gen, Batch: graph.Batch{
		{Op: graph.Insert, From: graph.NodeID(seq), To: graph.NodeID(seq + 1), FromLabel: "a", ToLabel: "b"},
	}}
}

func TestReplicaLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenReplicaLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(3, 0); err != nil {
		t.Fatal(err)
	}
	// Sparse seqs: the shard only saw records 2, 5, 9.
	seqs := []uint64{2, 5, 9}
	prev := uint64(0)
	for _, s := range seqs {
		if err := l.Append(3, prev, replRec(s, s*10)); err != nil {
			t.Fatalf("append seq %d: %v", s, err)
		}
		prev = s
	}
	if got, _ := l.LastSeq(3); got != 9 {
		t.Fatalf("LastSeq = %d, want 9", got)
	}
	if n := l.Records(3); n != 3 {
		t.Fatalf("Records = %d, want 3", n)
	}
	recs, err := l.Replay(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replay decoded %d records, want 3", len(recs))
	}
	for i, s := range seqs {
		if recs[i].Seq != s || recs[i].Gen != s*10 {
			t.Fatalf("record %d = seq %d gen %d, want seq %d gen %d", i, recs[i].Seq, recs[i].Gen, s, s*10)
		}
		if len(recs[i].Batch) != 1 || recs[i].Batch[0].From != graph.NodeID(s) {
			t.Fatalf("record %d batch mismatch", i)
		}
	}
	l.Close()

	// Reopen: state survives, appends continue from the chain.
	l2, err := OpenReplicaLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got, ok := l2.LastSeq(3); !ok || got != 9 {
		t.Fatalf("reopened LastSeq = %d,%v, want 9,true", got, ok)
	}
	if err := l2.Append(3, 9, replRec(12, 120)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if shards := l2.Shards(); len(shards) != 1 || shards[0] != 3 {
		t.Fatalf("Shards = %v, want [3]", shards)
	}
}

func TestReplicaLogGapDetection(t *testing.T) {
	for _, mode := range []string{"mem", "file"} {
		t.Run(mode, func(t *testing.T) {
			var l *ReplicaLog
			if mode == "mem" {
				l = NewMemReplicaLog()
			} else {
				var err error
				if l, err = OpenReplicaLog(t.TempDir(), SyncNone); err != nil {
					t.Fatal(err)
				}
				defer l.Close()
			}
			// Unplaced shard: any append is a gap.
			if err := l.Append(0, 0, replRec(1, 1)); !errors.Is(err, ErrSeqGap) {
				t.Fatalf("append to unplaced shard: err = %v, want ErrSeqGap", err)
			}
			if err := l.Reset(0, 4); err != nil {
				t.Fatal(err)
			}
			// Chain must start from the reset seq.
			if err := l.Append(0, 0, replRec(5, 5)); !errors.Is(err, ErrSeqGap) {
				t.Fatalf("wrong prevSeq: err = %v, want ErrSeqGap", err)
			}
			if err := l.Append(0, 4, replRec(7, 7)); err != nil {
				t.Fatal(err)
			}
			// Skipping a link is a gap; a failed append changes nothing.
			if err := l.Append(0, 9, replRec(11, 11)); !errors.Is(err, ErrSeqGap) {
				t.Fatalf("skipped link: err = %v, want ErrSeqGap", err)
			}
			// Replays and stale seqs are gaps too.
			if err := l.Append(0, 7, replRec(7, 7)); !errors.Is(err, ErrSeqGap) {
				t.Fatalf("stale seq: err = %v, want ErrSeqGap", err)
			}
			if got, _ := l.LastSeq(0); got != 7 {
				t.Fatalf("LastSeq after failed appends = %d, want 7", got)
			}
			if n := l.Records(0); n != 1 {
				t.Fatalf("Records = %d, want 1", n)
			}
			// Reset heals: restart the chain at the resync point.
			if err := l.Reset(0, 11); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(0, 11, replRec(12, 12)); err != nil {
				t.Fatalf("append after reset: %v", err)
			}
		})
	}
}

func TestReplicaLogTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenReplicaLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(1, 0); err != nil {
		t.Fatal(err)
	}
	for _, s := range []uint64{1, 2, 3} {
		prev := s - 1
		if err := l.Append(1, prev, replRec(s, s)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Tear the last record: chop bytes off the tail mid-payload.
	path := filepath.Join(dir, "repl-001.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenReplicaLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// The torn record is gone; the log regressed to seq 2 — exactly the
	// state the gap check turns into a resync when seq-3's successor
	// arrives chaining from 3.
	if got, _ := l2.LastSeq(1); got != 2 {
		t.Fatalf("LastSeq after torn tail = %d, want 2", got)
	}
	if err := l2.Append(1, 3, replRec(4, 4)); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("append chaining past torn record: err = %v, want ErrSeqGap", err)
	}
	if err := l2.Append(1, 2, replRec(3, 3)); err != nil {
		t.Fatalf("re-append torn record: %v", err)
	}
	recs, err := l2.Replay(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Seq != 3 {
		t.Fatalf("replay after repair = %d records (last seq %d), want 3 ending at 3", len(recs), recs[len(recs)-1].Seq)
	}
}

func TestReplicaLogDrop(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenReplicaLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Reset(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, 0, replRec(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Drop(2); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.LastSeq(2); ok {
		t.Fatal("dropped shard still has a log")
	}
	if _, err := os.Stat(filepath.Join(dir, "repl-002.log")); !os.IsNotExist(err) {
		t.Fatalf("dropped shard file still exists: %v", err)
	}
	// Dropping again is a no-op.
	if err := l.Drop(2); err != nil {
		t.Fatal(err)
	}
}
