package store

import (
	"io"
	"os"
	"path/filepath"
)

// Filesystem seam. Every write-path file operation in the store — WAL
// append, snapshot encode, MANIFEST tmp+rename+dir-fsync rotation,
// replica-log append — goes through an FS, so a fault-injecting
// implementation (FaultFS) can fail any single syscall deterministically
// while the default (OS) compiles down to the os package with no
// indirection cost worth measuring against an fsync.
//
// The seam deliberately covers only what the store uses: open/create,
// temp files, rename, remove, mkdir, and directory fsync. Read-side
// convenience loaders (ReadSnapshotFile, ReadGraphFile) stay on the os
// package — recovery reads real bytes off a real disk, and the fault
// story is about writes that were acknowledged or torn.

// File is the subset of *os.File the store writes through.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Name() string
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// FS abstracts the filesystem operations on the store's write path.
type FS interface {
	// OpenFile opens name like os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a temp file like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Rename renames oldpath to newpath like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove removes name like os.Remove.
	Remove(name string) error
	// MkdirAll creates a directory tree like os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so a rename within it is durable.
	SyncDir(dir string) error
	// Glob matches like filepath.Glob.
	Glob(pattern string) ([]string, error)
}

// OS is the default FS: the real filesystem via the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

// fsOrOS returns fsys, defaulting nil to the real filesystem.
func fsOrOS(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}
