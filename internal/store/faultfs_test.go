package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

// faultGraph builds the deterministic graph the fault drills run over.
func faultGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.Synthetic(gen.GraphSpec{Nodes: 80, Edges: 300, Labels: 4, GiantSCCFrac: 0.4, Seed: 11})
}

// TestFaultFSDeterminismPin is the disk-chaos determinism pin: the same
// seed and rules over the same traffic produce the same event log, run to
// run, even though snapshot and manifest rotation go through
// randomly-named temp files. SyncLie is the probe kind because it returns
// success — control flow (and therefore traffic) is identical whether or
// not a rule fires, so the two runs are honestly comparable.
func TestFaultFSDeterminismPin(t *testing.T) {
	run := func(dir string) []string {
		ffs := NewFaultFS(42, FSRule{Op: "sync", Prob: 0.5, Kind: FaultSyncLie})
		g := faultGraph(t)
		s, err := Create(dir, g, Options{FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		scratch := g
		for i := 0; i < 6; i++ {
			b := gen.Updates(scratch, gen.UpdateSpec{Count: 20, InsertRatio: 0.6, Locality: 0.5, Seed: int64(300 + i)})
			if err := s.Append(b, scratch.Generation()); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			if err := scratch.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
			if i == 3 {
				if err := s.Checkpoint(scratch); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			}
		}
		s.Close()
		return ffs.Events()
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	if len(a) == 0 {
		t.Fatal("no faults fired; the pin is vacuous")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event logs diverged across identical runs:\n run1: %v\n run2: %v", a, b)
	}
	for _, ev := range a {
		if strings.Contains(ev, ".snap-") || strings.Contains(ev, ".manifest-") {
			if !strings.Contains(ev, "-*") {
				t.Fatalf("temp-file event %q not normalized", ev)
			}
		}
	}
}

// TestFaultFSCrashWedges pins the ErrCrashed contract: after an injected
// crash, every subsequent operation fails with ErrCrashed rather than
// touching the disk.
func TestFaultFSCrashWedges(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(1, FSRule{Op: "write", Index: 1, Kind: FaultCrash})
	f, err := ffs.OpenFile(filepath.Join(dir, "x.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("pre-crash write: %v", err)
	}
	if _, err := f.Write([]byte("second")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write: got %v, want ErrCrashed", err)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() = false after injected crash")
	}
	if _, err := f.Write([]byte("third")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: got %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: got %v, want ErrCrashed", err)
	}
	if _, err := ffs.OpenFile(filepath.Join(dir, "y.log"), os.O_RDWR|os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: got %v, want ErrCrashed", err)
	}
}

// TestReplicaLogAppendFaultEveryByteBoundary drives a replica-log append
// into an injected partial write at every byte boundary of the record
// frame — 0 bytes landed through the whole frame landed — for both the
// ENOSPC and torn-write kinds. The contract at every boundary is the
// same: the failed append is rolled back (Verify stays clean, LastSeq
// does not advance), a reopen sees exactly the pre-fault records, and the
// chain continues from there.
func TestReplicaLogAppendFaultEveryByteBoundary(t *testing.T) {
	rec1, rec2 := replRec(2, 20), replRec(5, 50)
	payload, err := EncodeRecord(rec2.Seq, rec2.Gen, rec2.Batch)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(payload) + 8 // length+CRC header precedes the payload
	for _, kind := range []FaultKind{FaultENOSPC, FaultTornWrite} {
		for keep := 0; keep <= frameLen; keep++ {
			t.Run(fmt.Sprintf("%s/keep%d", kind, keep), func(t *testing.T) {
				dir := t.TempDir()
				// Write #0 is the header Reset writes, #1 is rec1, #2 is the
				// append under fire.
				ffs := NewFaultFS(9, FSRule{Op: "write", Path: "repl-", Index: 2, Kind: kind, Keep: keep})
				l, err := OpenReplicaLogFS(ffs, dir, SyncNone)
				if err != nil {
					t.Fatal(err)
				}
				if err := l.Reset(3, 0); err != nil {
					t.Fatal(err)
				}
				if err := l.Append(3, 0, rec1); err != nil {
					t.Fatal(err)
				}
				if err := l.Append(3, rec1.Seq, rec2); err == nil {
					t.Fatal("faulted append succeeded")
				}
				if got, _ := l.LastSeq(3); got != rec1.Seq {
					t.Fatalf("LastSeq after failed append = %d, want %d", got, rec1.Seq)
				}
				if err := l.Verify(3); err != nil {
					t.Fatalf("Verify after rollback: %v", err)
				}
				l.Close()

				// Reopen on the real filesystem: the torn bytes must be gone.
				l2, err := OpenReplicaLog(dir, SyncNone)
				if err != nil {
					t.Fatal(err)
				}
				defer l2.Close()
				if got, ok := l2.LastSeq(3); !ok || got != rec1.Seq {
					t.Fatalf("reopened LastSeq = %d,%v, want %d,true", got, ok, rec1.Seq)
				}
				if n := l2.Records(3); n != 1 {
					t.Fatalf("reopened Records = %d, want 1", n)
				}
				if err := l2.Append(3, rec1.Seq, rec2); err != nil {
					t.Fatalf("chain continuation after heal: %v", err)
				}
				recs, err := l2.Replay(3)
				if err != nil {
					t.Fatal(err)
				}
				if len(recs) != 2 || recs[0].Seq != rec1.Seq || recs[1].Seq != rec2.Seq {
					t.Fatalf("replay after heal = %v, want seqs [%d %d]", recs, rec1.Seq, rec2.Seq)
				}
			})
		}
	}
}

// TestReplicaLogTornTailHealsAsGap covers the double-fault path: the
// append's write tears AND the rollback truncate fails, so torn bytes
// stay on disk. The next open must truncate the invalid tail, and the
// log must accept the successor of whatever sequence survived — replay
// is always a clean prefix of the sent chain.
func TestReplicaLogTornTailHealsAsGap(t *testing.T) {
	rec1, rec2 := replRec(2, 20), replRec(5, 50)
	payload, err := EncodeRecord(rec2.Seq, rec2.Gen, rec2.Batch)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(payload) + 8
	for keep := 0; keep <= frameLen; keep++ {
		t.Run(fmt.Sprintf("keep%d", keep), func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS(9,
				FSRule{Op: "write", Path: "repl-", Index: 2, Kind: FaultTornWrite, Keep: keep},
				FSRule{Op: "truncate", Path: "repl-", Kind: FaultEIO})
			l, err := OpenReplicaLogFS(ffs, dir, SyncNone)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Reset(3, 0); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(3, 0, rec1); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(3, rec1.Seq, rec2); err == nil {
				t.Fatal("faulted append succeeded")
			}
			l.Close()

			l2, err := OpenReplicaLog(dir, SyncNone)
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			last, ok := l2.LastSeq(3)
			if !ok {
				t.Fatal("shard log vanished")
			}
			// keep == frameLen leaves a complete, CRC-valid record: the
			// reopen legitimately adopts it. Anything shorter is a torn tail
			// the open truncates back to rec1.
			want := rec1.Seq
			if keep == frameLen {
				want = rec2.Seq
			}
			if last != want {
				t.Fatalf("reopened LastSeq = %d, want %d", last, want)
			}
			next := replRec(9, 90)
			if err := l2.Append(3, last, next); err != nil {
				t.Fatalf("chain from survived seq %d: %v", last, err)
			}
		})
	}
}

// TestStoreCheckpointFaultMatrix fails MANIFEST rotation at every stage —
// snapshot write, fresh-WAL creation, manifest temp create/write/sync,
// the commit rename, and the directory fsync after it — and checks the
// crash-safety contract each time: Checkpoint reports the failure, the
// store stays appendable, and a clean reopen sees every acked batch
// (served by the old pair when the commit never happened, by the new pair
// when only its durability was left uncertain).
func TestStoreCheckpointFaultMatrix(t *testing.T) {
	stages := []struct {
		name string
		rule FSRule
	}{
		{"snapshot-write", FSRule{Op: "write", Path: ".snap-", Kind: FaultEIO}},
		{"snapshot-enospc", FSRule{Op: "write", Path: ".snap-", Kind: FaultENOSPC, Keep: 10}},
		{"wal-create-sync", FSRule{Op: "sync", Path: "wal-00000002", Kind: FaultSyncFail}},
		{"manifest-create", FSRule{Op: "create", Path: ".manifest", Kind: FaultEIO}},
		{"manifest-write", FSRule{Op: "write", Path: ".manifest", Kind: FaultENOSPC, Keep: 7}},
		{"manifest-sync", FSRule{Op: "sync", Path: ".manifest", Kind: FaultSyncFail}},
		{"manifest-rename", FSRule{Op: "rename", Path: "MANIFEST", Kind: FaultEIO}},
		{"dir-sync", FSRule{Op: "syncdir", Kind: FaultSyncFail}},
	}
	for _, st := range stages {
		t.Run(st.name, func(t *testing.T) {
			dir := t.TempDir()
			g := faultGraph(t)
			s, err := Create(dir, g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				b := gen.Updates(g, gen.UpdateSpec{Count: 15, InsertRatio: 0.6, Locality: 0.5, Seed: int64(400 + i)})
				if err := s.Append(b, g.Generation()); err != nil {
					t.Fatal(err)
				}
				if err := g.ApplyBatch(b); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()

			ffs := NewFaultFS(5, st.rule)
			s2, g2, recs, err := Open(dir, Options{FS: ffs})
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range recs {
				if err := g2.ApplyBatch(rec.Batch); err != nil {
					t.Fatal(err)
				}
			}
			if !g2.Equal(g) {
				t.Fatal("recovered graph diverged before the drill even started")
			}
			if err := s2.Checkpoint(g2); err == nil {
				t.Fatal("checkpoint under injected fault reported success")
			}
			if ffs.Fired() == 0 {
				t.Fatal("rule never fired; the stage name is stale")
			}
			// The store must stay appendable after the failed rotation —
			// whichever pair is current.
			post := gen.Updates(g2, gen.UpdateSpec{Count: 10, InsertRatio: 0.6, Locality: 0.5, Seed: 999})
			if err := s2.Append(post, g2.Generation()); err != nil {
				t.Fatalf("append after failed checkpoint: %v", err)
			}
			if err := g2.ApplyBatch(post); err != nil {
				t.Fatal(err)
			}
			s2.Close()

			// Clean reopen: every acked batch present, nothing else.
			s3, g3, recs3, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after faulted checkpoint: %v", err)
			}
			defer s3.Close()
			for _, rec := range recs3 {
				if err := g3.ApplyBatch(rec.Batch); err != nil {
					t.Fatal(err)
				}
			}
			if !g3.Equal(g2) {
				t.Fatalf("stage %s: reopened graph lost acked batches", st.name)
			}
		})
	}
}

// TestWALSyncLieVersusSyncFailParity is the fsyncgate drill. Two WALs
// take the same four appends with a fault on the third append's fsync and
// a power failure on the next sync after it. When the third fsync FAILS,
// the append is not acknowledged, the record is rolled back, and replay
// after the power loss shows exactly the acknowledged prefix — "acked ⇒
// durable, not-acked ⇒ absent" holds. When the third fsync LIES, the
// append is acknowledged but the bytes never reached the platter, so the
// power loss erases an acked record — the one failure mode no storage
// layer can mask, which is why it exists here as an injectable kind: to
// prove the parity tests would catch a WAL that trusted a lying disk.
func TestWALSyncLieVersusSyncFailParity(t *testing.T) {
	batch := func(i int) graph.Batch {
		return graph.Batch{graph.InsNew(graph.NodeID(10*i), graph.NodeID(10*i+1), "a", "b")}
	}
	for _, tc := range []struct {
		kind      FaultKind
		pfIndex   int // the powerfail rule's own index for append 4's fsync
		wantAcked int // appends acknowledged before the crash
	}{
		// A fired rule returns before later rules' counters advance, so the
		// powerfail rule's index for "append 4's fsync" depends on the path:
		// under syncfail the rollback adds an extra sync the powerfail rule
		// counts (#3), pushing append 4's to #4; under synclie the lie
		// short-circuits rule evaluation at #3, so append 4's sync is the
		// powerfail rule's #3.
		{FaultSyncFail, 4, 2}, // append 3 refused and rolled back
		{FaultSyncLie, 3, 3},  // append 3 acked on a lie, then lost
	} {
		t.Run(tc.kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "wal-00000001.log")
			// Sync #0 is the header fsync at create; appends sync at #1, #2,
			// #3 (the faulted one), then the power failure.
			ffs := NewFaultFS(3,
				FSRule{Op: "sync", Path: "wal", Index: 3, Kind: tc.kind},
				FSRule{Op: "sync", Path: "wal", Index: tc.pfIndex, Kind: FaultPowerFail})
			w, err := CreateWALFS(ffs, path, 0, SyncAlways)
			if err != nil {
				t.Fatal(err)
			}
			acked := 0
			for i := 1; i <= 4; i++ {
				if err := w.Append(batch(i), uint64(i)); err == nil {
					acked++
				}
			}
			if acked != tc.wantAcked {
				t.Fatalf("acked %d appends, want %d", acked, tc.wantAcked)
			}
			if !ffs.Crashed() {
				t.Fatal("power failure never fired")
			}

			// Recovery reads the real file: only genuinely synced bytes
			// survived the power loss.
			recs, _, err := ReplayWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 2 {
				t.Fatalf("replayed %d records, want 2 (the truly durable prefix)", len(recs))
			}
			for i, rec := range recs {
				if !reflect.DeepEqual(rec.Batch, batch(i+1)) {
					t.Fatalf("record %d is not append %d", i, i+1)
				}
			}
			if tc.kind == FaultSyncFail && acked != len(recs) {
				t.Fatalf("parity broken: %d acked, %d durable", acked, len(recs))
			}
			if tc.kind == FaultSyncLie && acked == len(recs) {
				t.Fatal("the lying fsync was somehow detected; this drill should lose an acked record")
			}
		})
	}
}
