package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"incgraph/internal/graph"
)

// testGraph builds a deterministic random graph with deletions (so slot
// free lists are non-trivial) on the given shard count.
func testGraph(t testing.TB, shards, nodes, edges int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := graph.NewSharded(shards)
	for v := 0; v < nodes; v++ {
		g.AddNode(graph.NodeID(v), fmt.Sprintf("l%d", v%11))
	}
	for i := 0; i < edges; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(nodes)), graph.NodeID(rng.Intn(nodes)))
	}
	for i := 0; i < nodes/10; i++ {
		g.DeleteNode(graph.NodeID(rng.Intn(nodes)))
	}
	return g
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			g := testGraph(t, shards, 500, 2500)
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, g); err != nil {
				t.Fatal(err)
			}
			h, err := ReadSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
			if err != nil {
				t.Fatal(err)
			}
			if !g.Equal(h) {
				t.Fatal("snapshot round trip lost graph state")
			}
			if h.Generation() != g.Generation() {
				t.Fatalf("generation %d != %d", h.Generation(), g.Generation())
			}
			if h.NumShards() != g.NumShards() {
				t.Fatalf("shards %d != %d", h.NumShards(), g.NumShards())
			}
			// Slot parity: the next insertion must take the same slot.
			fresh := graph.NodeID(1_000_000)
			g.AddNode(fresh, "x")
			h.AddNode(fresh, "x")
			b := graph.Batch{graph.Ins(fresh, fresh)}
			if err := g.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
			if err := h.ApplyBatch(b); err != nil {
				t.Fatal(err)
			}
			if !g.Equal(h) {
				t.Fatal("post-load mutation diverged")
			}
		})
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	g := testGraph(t, 4, 300, 1500)
	var a, b bytes.Buffer
	if err := WriteSnapshot(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&b, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot encoding is not deterministic")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	g := testGraph(t, 2, 100, 400)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip a byte in the last segment: CRC must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := ReadSnapshot(bytes.NewReader(bad), int64(len(bad))); err == nil {
		t.Fatal("want CRC error for corrupt segment")
	}

	// Wrong magic.
	bad = append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := ReadSnapshot(bytes.NewReader(bad), int64(len(bad))); err == nil {
		t.Fatal("want error for bad magic")
	}

	// Future version.
	bad = append([]byte(nil), good...)
	bad[8] = 99
	if _, err := ReadSnapshot(bytes.NewReader(bad), int64(len(bad))); err == nil {
		t.Fatal("want error for unknown version")
	}

	// Truncated file.
	if _, err := ReadSnapshot(bytes.NewReader(good[:len(good)/2]), int64(len(good)/2)); err == nil {
		t.Fatal("want error for truncated snapshot")
	}
}

func TestSnapshotFileAndSniff(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 4, 200, 800)
	snapPath := filepath.Join(dir, "g.snap")
	if err := WriteSnapshotFile(snapPath, g); err != nil {
		t.Fatal(err)
	}
	ok, err := IsSnapshotFile(snapPath)
	if err != nil || !ok {
		t.Fatalf("IsSnapshotFile(snap) = %v, %v", ok, err)
	}

	textPath := filepath.Join(dir, "g.txt")
	f := mustCreate(t, textPath)
	if err := graph.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ok, err = IsSnapshotFile(textPath)
	if err != nil || ok {
		t.Fatalf("IsSnapshotFile(text) = %v, %v", ok, err)
	}

	// ReadGraphFile loads both formats identically.
	hs, err := ReadGraphFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	ht, err := ReadGraphFile(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if !hs.Equal(g) || !ht.Equal(g) {
		t.Fatal("ReadGraphFile lost graph state")
	}
}
