package store

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Deterministic disk-fault injection. A FaultFS wraps a real FS and fails
// chosen syscalls — matched by operation, file name, and per-rule
// occurrence index — the storage counterpart of the cluster package's
// FaultScript frame shim. Every fired fault is recorded in an event log,
// and a drill run twice from the same seed over the same traffic produces
// identical logs (the CI disk-chaos job's determinism pin).
//
// The injectable failure modes cover the classic fsyncgate taxonomy:
// whole-write EIO, partial-write ENOSPC, short and torn writes, fsync
// that fails, fsync that lies (returns nil without making anything
// durable), and crash-at-write-K — with FaultPowerFail additionally
// truncating every tracked file back to its last truly-synced size, so
// recovery drills see exactly the bytes a power loss would have left.
//
// Tracking is per path: writes grow a file's size, a genuine successful
// Sync advances its synced watermark, Truncate clamps both, and Rename
// moves the entry. Renames themselves are not undone by FaultPowerFail
// (directory-entry loss is approximated by failing SyncDir instead).
//
// Temp files get random names, which would make event logs diverge run to
// run, so events and path matching use a normalized base name: a
// dot-prefixed name's random suffix collapses to "*" (".manifest-123456"
// → ".manifest-*", matching the os.CreateTemp pattern that made it).

// FaultKind is the failure a fired rule injects.
type FaultKind int

const (
	// FaultEIO fails the operation outright; a write lands no bytes.
	FaultEIO FaultKind = iota
	// FaultENOSPC writes Keep bytes, then reports no space.
	FaultENOSPC
	// FaultShortWrite writes Keep bytes and returns io.ErrShortWrite.
	FaultShortWrite
	// FaultTornWrite writes Keep bytes, then reports an I/O error — the
	// classic torn append.
	FaultTornWrite
	// FaultSyncFail fails an fsync without flushing.
	FaultSyncFail
	// FaultSyncLie reports an fsync as successful without flushing: the
	// synced watermark does not advance, so a later FaultPowerFail drops
	// the "durable" bytes.
	FaultSyncLie
	// FaultCrash fails this and every subsequent operation with
	// ErrCrashed; bytes already written stay (a process crash — the page
	// cache survives).
	FaultCrash
	// FaultPowerFail is FaultCrash plus truncation of every tracked file
	// to its last truly-synced size (a power loss — the page cache dies).
	FaultPowerFail
)

func (k FaultKind) String() string {
	switch k {
	case FaultEIO:
		return "eio"
	case FaultENOSPC:
		return "enospc"
	case FaultShortWrite:
		return "shortwrite"
	case FaultTornWrite:
		return "tornwrite"
	case FaultSyncFail:
		return "syncfail"
	case FaultSyncLie:
		return "synclie"
	case FaultCrash:
		return "crash"
	case FaultPowerFail:
		return "powerfail"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// ErrCrashed reports an operation attempted after an injected crash.
var ErrCrashed = errors.New("store: faultfs: crashed")

// FSRule matches filesystem operations. Zero values of the match fields
// are wildcards where noted.
type FSRule struct {
	// Op matches the operation: "open", "create", "write", "sync",
	// "truncate", "rename", "remove", "syncdir". "" matches any.
	Op string
	// Path matches as a substring of the normalized base name ("" = any).
	Path string
	// Index matches the rule's 0-based Nth selector match (-1 = every
	// match). The count is per rule: two rules watching the same file
	// keep independent indexes.
	Index int
	// Prob, when in (0,1), fires the rule with that probability from the
	// seeded source; 0 and 1 both mean "always".
	Prob float64
	// Count limits how many times the rule fires (0 = unlimited).
	Count int
	// Kind is the failure to inject.
	Kind FaultKind
	// Keep is how many bytes of the attempted write land before a
	// partial-write kind reports failure.
	Keep int
}

// fileTrack is one tracked path's durability state.
type fileTrack struct {
	size   int64 // bytes written through the shim
	synced int64 // size at the last genuine successful fsync
}

// FaultFS is a seeded fault-injecting FS over Inner (the real filesystem
// when nil). Safe for concurrent use.
type FaultFS struct {
	Inner FS
	Seed  int64
	Rules []FSRule

	mu      sync.Mutex
	rng     *rand.Rand
	seen    []int // per-rule selector-match counts (Index currency)
	fired   []int
	events  []string
	crashed bool
	tracked map[string]*fileTrack
}

// NewFaultFS builds a fault-injecting filesystem from rules.
func NewFaultFS(seed int64, rules ...FSRule) *FaultFS {
	return &FaultFS{Seed: seed, Rules: rules}
}

// Events returns a copy of the fault log: one "op#n name kind" line per
// fired fault, in firing order, with temp-file names normalized.
func (f *FaultFS) Events() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.events...)
}

// Fired returns the total number of faults fired so far.
func (f *FaultFS) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.fired {
		n += c
	}
	return n
}

// Crashed reports whether an injected crash has wedged the filesystem.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// normName collapses a path to its base name with any temp-file random
// suffix replaced by "*", so event logs are identical across runs.
func normName(name string) string {
	base := filepath.Base(name)
	if strings.HasPrefix(base, ".") {
		if i := strings.LastIndexByte(base, '-'); i >= 0 {
			base = base[:i+1] + "*"
		}
	}
	return base
}

// fault runs one operation through the rules. It returns the fired rule,
// whether one fired, and a non-nil error when the filesystem has already
// crashed (the operation must not run at all).
func (f *FaultFS) fault(op, name string) (FSRule, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return FSRule{}, false, ErrCrashed
	}
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.Seed))
		f.seen = make([]int, len(f.Rules))
		f.fired = make([]int, len(f.Rules))
	}
	base := normName(name)
	for i, r := range f.Rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(base, r.Path) {
			continue
		}
		idx := f.seen[i]
		f.seen[i]++
		if r.Index >= 0 && r.Index != idx {
			continue
		}
		if r.Count > 0 && f.fired[i] >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && f.rng.Float64() >= r.Prob {
			continue
		}
		f.fired[i]++
		f.events = append(f.events, fmt.Sprintf("%s#%d %s %s", op, idx, base, r.Kind))
		return r, true, nil
	}
	return FSRule{}, false, nil
}

// injectErr labels an injected failure.
func injectErr(op, name string, kind FaultKind) error {
	return fmt.Errorf("store: faultfs: injected %s on %s %s", kind, op, normName(name))
}

// crash wedges the filesystem; with power, every tracked file is
// truncated back to its last truly-synced size through the inner FS.
func (f *FaultFS) crash(power bool) {
	f.mu.Lock()
	f.crashed = true
	var cut map[string]int64
	if power {
		cut = make(map[string]int64, len(f.tracked))
		for path, t := range f.tracked {
			cut[path] = t.synced
		}
	}
	f.mu.Unlock()
	inner := fsOrOS(f.Inner)
	for path, synced := range cut {
		file, err := inner.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			continue // already renamed away or removed
		}
		file.Truncate(synced)
		file.Sync()
		file.Close()
	}
}

// track registers (or refreshes) a path's durability state.
func (f *FaultFS) track(path string, size int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tracked == nil {
		f.tracked = make(map[string]*fileTrack)
	}
	f.tracked[path] = &fileTrack{size: size, synced: size}
}

func (f *FaultFS) grow(path string, n int) {
	if n <= 0 {
		return
	}
	f.mu.Lock()
	if t := f.tracked[path]; t != nil {
		t.size += int64(n)
	}
	f.mu.Unlock()
}

func (f *FaultFS) markSynced(path string) {
	f.mu.Lock()
	if t := f.tracked[path]; t != nil {
		t.synced = t.size
	}
	f.mu.Unlock()
}

func (f *FaultFS) clamp(path string, size int64) {
	f.mu.Lock()
	if t := f.tracked[path]; t != nil {
		t.size = size
		if t.synced > size {
			t.synced = size
		}
	}
	f.mu.Unlock()
}

func (f *FaultFS) retrack(oldpath, newpath string) {
	f.mu.Lock()
	if t := f.tracked[oldpath]; t != nil {
		delete(f.tracked, oldpath)
		if f.tracked == nil {
			f.tracked = make(map[string]*fileTrack)
		}
		f.tracked[newpath] = t
	}
	f.mu.Unlock()
}

func (f *FaultFS) untrack(path string) {
	f.mu.Lock()
	delete(f.tracked, path)
	f.mu.Unlock()
}

// opErr resolves a fired rule on a non-write, non-sync operation.
func opErr(r FSRule, f *FaultFS, op, name string) error {
	switch r.Kind {
	case FaultCrash:
		f.crash(false)
		return ErrCrashed
	case FaultPowerFail:
		f.crash(true)
		return ErrCrashed
	default:
		return injectErr(op, name, r.Kind)
	}
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	rule, fired, err := f.fault("open", name)
	if err != nil {
		return nil, err
	}
	if fired {
		return nil, opErr(rule, f, "open", name)
	}
	file, err := fsOrOS(f.Inner).OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	size := int64(0)
	if flag&os.O_TRUNC == 0 {
		if st, err := file.Stat(); err == nil {
			size = st.Size()
		}
	}
	f.track(name, size)
	return &faultFile{fs: f, inner: file, path: name}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	// Faults match (and log) the deterministic pattern, not the random
	// name the temp file ends up with.
	rule, fired, err := f.fault("create", pattern)
	if err != nil {
		return nil, err
	}
	if fired {
		return nil, opErr(rule, f, "create", pattern)
	}
	file, err := fsOrOS(f.Inner).CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	f.track(file.Name(), 0)
	return &faultFile{fs: f, inner: file, path: file.Name()}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	rule, fired, err := f.fault("rename", newpath)
	if err != nil {
		return err
	}
	if fired {
		return opErr(rule, f, "rename", newpath)
	}
	if err := fsOrOS(f.Inner).Rename(oldpath, newpath); err != nil {
		return err
	}
	f.retrack(oldpath, newpath)
	return nil
}

func (f *FaultFS) Remove(name string) error {
	rule, fired, err := f.fault("remove", name)
	if err != nil {
		return err
	}
	if fired {
		return opErr(rule, f, "remove", name)
	}
	if err := fsOrOS(f.Inner).Remove(name); err != nil {
		return err
	}
	f.untrack(name)
	return nil
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return fsOrOS(f.Inner).MkdirAll(path, perm)
}

func (f *FaultFS) SyncDir(dir string) error {
	rule, fired, err := f.fault("syncdir", dir)
	if err != nil {
		return err
	}
	if fired {
		switch rule.Kind {
		case FaultSyncLie:
			return nil
		case FaultCrash:
			f.crash(false)
			return ErrCrashed
		case FaultPowerFail:
			f.crash(true)
			return ErrCrashed
		default:
			return injectErr("syncdir", dir, rule.Kind)
		}
	}
	return fsOrOS(f.Inner).SyncDir(dir)
}

func (f *FaultFS) Glob(pattern string) ([]string, error) {
	return fsOrOS(f.Inner).Glob(pattern)
}

// faultFile shims one open file through the rules.
type faultFile struct {
	fs    *FaultFS
	inner File
	path  string
}

func (c *faultFile) Write(p []byte) (int, error) {
	rule, fired, err := c.fs.fault("write", c.path)
	if err != nil {
		return 0, err
	}
	if !fired {
		n, err := c.inner.Write(p)
		c.fs.grow(c.path, n)
		return n, err
	}
	// Partial-write kinds land Keep bytes before failing; EIO lands none.
	n := 0
	if rule.Kind != FaultEIO {
		keep := rule.Keep
		if keep > len(p) {
			keep = len(p)
		}
		if keep > 0 {
			n, _ = c.inner.Write(p[:keep])
			c.fs.grow(c.path, n)
		}
	}
	switch rule.Kind {
	case FaultShortWrite:
		return n, fmt.Errorf("store: faultfs: %s on write %s: %w", rule.Kind, normName(c.path), io.ErrShortWrite)
	case FaultCrash:
		c.fs.crash(false)
		return n, ErrCrashed
	case FaultPowerFail:
		c.fs.crash(true)
		return n, ErrCrashed
	default:
		return n, injectErr("write", c.path, rule.Kind)
	}
}

func (c *faultFile) Sync() error {
	rule, fired, err := c.fs.fault("sync", c.path)
	if err != nil {
		return err
	}
	if fired {
		switch rule.Kind {
		case FaultSyncLie:
			return nil // reported durable, nothing flushed
		case FaultCrash:
			c.fs.crash(false)
			return ErrCrashed
		case FaultPowerFail:
			c.fs.crash(true)
			return ErrCrashed
		default:
			return injectErr("sync", c.path, rule.Kind)
		}
	}
	if err := c.inner.Sync(); err != nil {
		return err
	}
	c.fs.markSynced(c.path)
	return nil
}

func (c *faultFile) Truncate(size int64) error {
	rule, fired, err := c.fs.fault("truncate", c.path)
	if err != nil {
		return err
	}
	if fired {
		return opErr(rule, c.fs, "truncate", c.path)
	}
	if err := c.inner.Truncate(size); err != nil {
		return err
	}
	c.fs.clamp(c.path, size)
	return nil
}

func (c *faultFile) Read(p []byte) (int, error) {
	if c.fs.Crashed() {
		return 0, ErrCrashed
	}
	return c.inner.Read(p)
}

func (c *faultFile) Seek(offset int64, whence int) (int64, error) {
	if c.fs.Crashed() {
		return 0, ErrCrashed
	}
	return c.inner.Seek(offset, whence)
}

func (c *faultFile) Close() error               { return c.inner.Close() }
func (c *faultFile) Name() string               { return c.inner.Name() }
func (c *faultFile) Stat() (os.FileInfo, error) { return c.inner.Stat() }
