// Package store is the durability subsystem: versioned per-shard binary
// snapshots of the graph substrate, a CRC-framed write-ahead log of ΔG
// batches, and the Store that composes the two into checkpoint/recover
// cycles under a crash-safe directory layout.
//
// # Snapshot format (.snap, version 1)
//
// A snapshot is one file: a manifest header followed by one binary segment
// per shard. All fixed-width integers are little-endian; segment bodies
// use varint/uvarint coding with delta-compressed adjacency.
//
//	magic     [8]byte  "incgsnp1"
//	version   uint32   (currently 1)
//	shards    uint32   (power of two, ≤ graph.MaxShards)
//	gen       uint64   mutation generation at snapshot time
//	nodes     uint64   |V| (load-time integrity check)
//	edges     uint64   |E| (load-time integrity check)
//	labels    uint32 count, then per label: uint32 byte length + bytes.
//	          Node records reference labels by position in this table, so
//	          snapshots are portable across processes whose global intern
//	          tables assigned different LabelIDs.
//	directory per shard: uint64 offset, uint64 length, uint32 CRC-32 (IEEE)
//	segments  shard 0..P-1, each covered by its directory CRC
//
// Each segment encodes its shard in the stable order of
// graph.ExportShard — nodes ascending by ID, adjacency ascending — so
// identical graphs produce byte-identical snapshots:
//
//	uvarint nodeCount
//	uvarint slotCap
//	uvarint freeCount, then uvarint per recycled local slot
//	per node: varint id, uvarint label index, uvarint local slot,
//	          uvarint out-degree + delta-coded ids,
//	          uvarint in-degree  + delta-coded ids
//
// Segments are independent: WriteSnapshot encodes them in parallel, and
// ReadSnapshot loads them in parallel (graph.ParallelFor over shards, one
// graph.LoadShard per segment) before a serial graph.FinishLoad rebuilds
// the global label index. The load restores the graph exactly — slot
// allocator state included — so every downstream engine behaves
// byte-identically to one built on the never-serialized graph. The
// per-shard segment is deliberately the unit a multi-process deployment
// would ship over RPC.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"incgraph/internal/graph"
)

// snapMagic identifies snapshot files; the trailing "1" is the major
// format family, the version field the revision.
var snapMagic = [8]byte{'i', 'n', 'c', 'g', 's', 'n', 'p', '1'}

// SnapshotVersion is the current snapshot format revision.
const SnapshotVersion = 1

// ErrBadSnapshot reports a snapshot that cannot be decoded: wrong magic,
// unknown version, or corruption the CRCs caught.
var ErrBadSnapshot = errors.New("store: bad snapshot")

// WriteSnapshot serializes g as a version-1 snapshot. The graph must be
// read-shareable for the duration (no concurrent mutation); segments are
// encoded in parallel across g.Parallelism() workers.
func WriteSnapshot(w io.Writer, g *graph.Graph) error {
	p := g.NumShards()

	// Label table: labels present in g, sorted by string for determinism;
	// LabelID → table position for the per-node references.
	labels := make([]string, 0, 16)
	g.Labels(func(label string, _ int) bool {
		labels = append(labels, label)
		return true
	})
	sort.Strings(labels)
	labelIdx := make(map[graph.LabelID]uint64, len(labels))
	for i, l := range labels {
		id, ok := graph.LabelIDOf(l)
		if !ok {
			return fmt.Errorf("store: label %q not interned", l)
		}
		labelIdx[id] = uint64(i)
	}

	// Encode every shard segment, in parallel.
	segs := make([][]byte, p)
	errs := make([]error, p)
	graph.ParallelFor(g.Parallelism(), p, func(_, s int) {
		segs[s], errs[s] = encodeSegment(g, s, labelIdx)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Header + label table + directory.
	var hdr []byte
	hdr = append(hdr, snapMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, SnapshotVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(p))
	hdr = binary.LittleEndian.AppendUint64(hdr, g.Generation())
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(g.NumNodes()))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(g.NumEdges()))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(labels)))
	for _, l := range labels {
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(l)))
		hdr = append(hdr, l...)
	}
	offset := uint64(len(hdr) + p*20) // directory entry: 8+8+4 bytes
	for s := 0; s < p; s++ {
		hdr = binary.LittleEndian.AppendUint64(hdr, offset)
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(segs[s])))
		hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(segs[s]))
		offset += uint64(len(segs[s]))
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for s := 0; s < p; s++ {
		if _, err := w.Write(segs[s]); err != nil {
			return err
		}
	}
	return nil
}

// encodeSegment serializes shard s using the stable export order.
func encodeSegment(g *graph.Graph, s int, labelIdx map[graph.LabelID]uint64) ([]byte, error) {
	st := g.ExportShard(s)
	p64 := int64(g.NumShards())
	buf := make([]byte, 0, 16+24*len(st.Nodes))
	buf = binary.AppendUvarint(buf, uint64(len(st.Nodes)))
	buf = binary.AppendUvarint(buf, uint64(st.SlotCap))
	buf = binary.AppendUvarint(buf, uint64(len(st.Free)))
	for _, f := range st.Free {
		buf = binary.AppendUvarint(buf, uint64(f))
	}
	for _, n := range st.Nodes {
		li, ok := labelIdx[n.Label]
		if !ok {
			return nil, fmt.Errorf("store: node %d: label id %d missing from table", n.ID, n.Label)
		}
		buf = binary.AppendVarint(buf, int64(n.ID))
		buf = binary.AppendUvarint(buf, li)
		buf = binary.AppendUvarint(buf, uint64(int64(n.Slot)/p64))
		buf = appendAdjacency(buf, n.Out)
		buf = appendAdjacency(buf, n.In)
	}
	return buf, nil
}

// appendAdjacency delta-codes an ascending id list: varint first element,
// uvarint gaps after.
func appendAdjacency(buf []byte, vs []graph.NodeID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vs)))
	prev := int64(0)
	for i, v := range vs {
		if i == 0 {
			buf = binary.AppendVarint(buf, int64(v))
		} else {
			buf = binary.AppendUvarint(buf, uint64(int64(v)-prev))
		}
		prev = int64(v)
	}
	return buf
}

// snapHeader is the decoded manifest of a snapshot file.
type snapHeader struct {
	shards   int
	gen      uint64
	nodes    uint64
	edges    uint64
	labels   []graph.LabelID // table position → interned id (this process)
	segments []segmentInfo
}

type segmentInfo struct {
	offset uint64
	length uint64
	crc    uint32
}

// readSnapHeader parses and validates the manifest.
func readSnapHeader(r io.ReaderAt, size int64) (*snapHeader, error) {
	fixed := make([]byte, 8+4+4+8+8+8+4)
	if _, err := r.ReadAt(fixed, 0); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadSnapshot, err)
	}
	if [8]byte(fixed[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if v := binary.LittleEndian.Uint32(fixed[8:]); v != SnapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (have %d)", ErrBadSnapshot, v, SnapshotVersion)
	}
	h := &snapHeader{
		shards: int(binary.LittleEndian.Uint32(fixed[12:])),
		gen:    binary.LittleEndian.Uint64(fixed[16:]),
		nodes:  binary.LittleEndian.Uint64(fixed[24:]),
		edges:  binary.LittleEndian.Uint64(fixed[32:]),
	}
	if h.shards < 1 || h.shards > graph.MaxShards || h.shards&(h.shards-1) != 0 {
		return nil, fmt.Errorf("%w: invalid shard count %d", ErrBadSnapshot, h.shards)
	}
	nLabels := int(binary.LittleEndian.Uint32(fixed[40:]))
	// Each label entry is at least 4 bytes (its length field); the header
	// has no CRC of its own, so bound the count by the file size before
	// allocating anything proportional to it.
	if int64(nLabels) > size/4 {
		return nil, fmt.Errorf("%w: implausible label count %d", ErrBadSnapshot, nLabels)
	}
	// Stream the variable tail (label table + directory) instead of
	// slurping the file: segments are read separately, per shard.
	pos := int64(len(fixed))
	br := bufio.NewReader(io.NewSectionReader(r, pos, size-pos))
	var scratch [20]byte
	read := func(n int) ([]byte, error) {
		if _, err := io.ReadFull(br, scratch[:n]); err != nil {
			return nil, fmt.Errorf("%w: truncated manifest", ErrBadSnapshot)
		}
		return scratch[:n], nil
	}
	h.labels = make([]graph.LabelID, nLabels)
	for i := 0; i < nLabels; i++ {
		b, err := read(4)
		if err != nil {
			return nil, err
		}
		l := int(binary.LittleEndian.Uint32(b))
		if int64(l) > size {
			return nil, fmt.Errorf("%w: implausible label length %d", ErrBadSnapshot, l)
		}
		name := make([]byte, l)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("%w: truncated label table", ErrBadSnapshot)
		}
		h.labels[i] = graph.InternLabel(string(name))
	}
	h.segments = make([]segmentInfo, h.shards)
	for s := 0; s < h.shards; s++ {
		b, err := read(20)
		if err != nil {
			return nil, err
		}
		h.segments[s] = segmentInfo{
			offset: binary.LittleEndian.Uint64(b),
			length: binary.LittleEndian.Uint64(b[8:]),
			crc:    binary.LittleEndian.Uint32(b[16:]),
		}
		end := h.segments[s].offset + h.segments[s].length
		if end > uint64(size) || h.segments[s].offset > uint64(size) {
			return nil, fmt.Errorf("%w: segment %d extends past file end", ErrBadSnapshot, s)
		}
	}
	return h, nil
}

// ReadSnapshot decodes a snapshot into a fresh graph with the snapshot's
// shard count, loading segments in parallel. The result is identical to
// the serialized graph: nodes, labels, edges, slot allocation, and
// mutation generation.
func ReadSnapshot(r io.ReaderAt, size int64) (*graph.Graph, error) {
	h, err := readSnapHeader(r, size)
	if err != nil {
		return nil, err
	}
	g := graph.NewSharded(h.shards)
	if g.NumShards() != h.shards {
		return nil, fmt.Errorf("%w: shard count %d not constructible", ErrBadSnapshot, h.shards)
	}
	errs := make([]error, h.shards)
	graph.ParallelFor(g.Parallelism(), h.shards, func(_, s int) {
		errs[s] = loadSegment(r, g, s, h)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := g.FinishLoad(h.gen); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if uint64(g.NumNodes()) != h.nodes || uint64(g.NumEdges()) != h.edges {
		return nil, fmt.Errorf("%w: manifest says |V|=%d |E|=%d, loaded |V|=%d |E|=%d",
			ErrBadSnapshot, h.nodes, h.edges, g.NumNodes(), g.NumEdges())
	}
	return g, nil
}

// loadSegment reads, checks and decodes one shard segment into g.
func loadSegment(r io.ReaderAt, g *graph.Graph, s int, h *snapHeader) error {
	seg := h.segments[s]
	buf := make([]byte, seg.length)
	if _, err := r.ReadAt(buf, int64(seg.offset)); err != nil {
		return fmt.Errorf("%w: segment %d: %v", ErrBadSnapshot, s, err)
	}
	if crc := crc32.ChecksumIEEE(buf); crc != seg.crc {
		return fmt.Errorf("%w: segment %d: CRC mismatch (%08x != %08x)", ErrBadSnapshot, s, crc, seg.crc)
	}
	st, err := decodeSegment(buf, s, h, int64(g.NumShards()))
	if err != nil {
		return err
	}
	if err := g.LoadShard(s, st); err != nil {
		return fmt.Errorf("%w: segment %d: %v", ErrBadSnapshot, s, err)
	}
	return nil
}

// segReader walks a segment buffer with truncation-checked varint reads.
type segReader struct {
	buf []byte
	off int
	s   int
}

func (sr *segReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(sr.buf[sr.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: segment %d: truncated at %d", ErrBadSnapshot, sr.s, sr.off)
	}
	sr.off += n
	return v, nil
}

func (sr *segReader) varint() (int64, error) {
	v, n := binary.Varint(sr.buf[sr.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: segment %d: truncated at %d", ErrBadSnapshot, sr.s, sr.off)
	}
	sr.off += n
	return v, nil
}

// decodeSegment parses one shard segment body.
func decodeSegment(buf []byte, s int, h *snapHeader, p int64) (graph.ShardState, error) {
	sr := &segReader{buf: buf, s: s}
	var st graph.ShardState
	nNodes, err := sr.uvarint()
	if err != nil {
		return st, err
	}
	slotCap, err := sr.uvarint()
	if err != nil {
		return st, err
	}
	// Every issued slot corresponds to at least one encoded byte (a node
	// record or a free-list entry), so a cap past the segment length is
	// corrupt; the bound also makes the int32 casts below exact.
	if slotCap > uint64(len(buf)) || slotCap > 1<<31-1 {
		return st, fmt.Errorf("%w: segment %d: implausible slot cap %d", ErrBadSnapshot, s, slotCap)
	}
	st.SlotCap = int32(slotCap)
	nFree, err := sr.uvarint()
	if err != nil {
		return st, err
	}
	if nFree > uint64(len(buf)) {
		return st, fmt.Errorf("%w: segment %d: implausible free count %d", ErrBadSnapshot, s, nFree)
	}
	st.Free = make([]int32, nFree)
	for i := range st.Free {
		f, err := sr.uvarint()
		if err != nil {
			return st, err
		}
		if f >= slotCap {
			return st, fmt.Errorf("%w: segment %d: free slot %d out of cap %d", ErrBadSnapshot, s, f, slotCap)
		}
		st.Free[i] = int32(f)
	}
	if nNodes > uint64(len(buf)) {
		return st, fmt.Errorf("%w: segment %d: implausible node count %d", ErrBadSnapshot, s, nNodes)
	}
	st.Nodes = make([]graph.ShardNodeState, nNodes)
	for i := range st.Nodes {
		id, err := sr.varint()
		if err != nil {
			return st, err
		}
		li, err := sr.uvarint()
		if err != nil {
			return st, err
		}
		if li >= uint64(len(h.labels)) {
			return st, fmt.Errorf("%w: segment %d: label index %d out of table", ErrBadSnapshot, s, li)
		}
		local, err := sr.uvarint()
		if err != nil {
			return st, err
		}
		if local >= slotCap {
			return st, fmt.Errorf("%w: segment %d: local slot %d out of cap %d", ErrBadSnapshot, s, local, slotCap)
		}
		out, err := readAdjacency(sr)
		if err != nil {
			return st, err
		}
		in, err := readAdjacency(sr)
		if err != nil {
			return st, err
		}
		slot := int64(local)*p + int64(s)
		if slot > 1<<31-1 {
			return st, fmt.Errorf("%w: segment %d: slot %d overflows", ErrBadSnapshot, s, slot)
		}
		st.Nodes[i] = graph.ShardNodeState{
			ID:    graph.NodeID(id),
			Label: h.labels[li],
			Slot:  int32(slot),
			Out:   out,
			In:    in,
		}
	}
	if sr.off != len(buf) {
		return st, fmt.Errorf("%w: segment %d: %d trailing bytes", ErrBadSnapshot, s, len(buf)-sr.off)
	}
	return st, nil
}

// readAdjacency decodes one delta-coded id list.
func readAdjacency(sr *segReader) ([]graph.NodeID, error) {
	n, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(len(sr.buf)) {
		return nil, fmt.Errorf("%w: segment %d: implausible degree %d", ErrBadSnapshot, sr.s, n)
	}
	vs := make([]graph.NodeID, n)
	first, err := sr.varint()
	if err != nil {
		return nil, err
	}
	vs[0] = graph.NodeID(first)
	prev := first
	for i := 1; i < int(n); i++ {
		gap, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		prev += int64(gap)
		vs[i] = graph.NodeID(prev)
	}
	return vs, nil
}

// WriteSnapshotFile writes a snapshot atomically: to a temp file in the
// same directory, fsynced, then renamed over path.
func WriteSnapshotFile(path string, g *graph.Graph) error {
	return WriteSnapshotFileFS(OS, path, g)
}

// WriteSnapshotFileFS is WriteSnapshotFile through an explicit filesystem.
func WriteSnapshotFileFS(fsys FS, path string, g *graph.Graph) error {
	fsys = fsOrOS(fsys)
	tmp, err := fsys.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name())
	if err := WriteSnapshot(tmp, g); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp.Name(), path)
}

// ReadSnapshotFile loads a snapshot file.
func ReadSnapshotFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	return ReadSnapshot(f, info.Size())
}

// IsSnapshotFile sniffs whether path begins with the snapshot magic.
func IsSnapshotFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var m [8]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false, nil // shorter than the magic: not a snapshot
	}
	return m == snapMagic, nil
}

// ReadGraphFile loads a graph from path, auto-detecting the format:
// snapshot files (by magic) load via ReadSnapshot, anything else parses as
// the line-oriented text format. The CLI tools accept either
// interchangeably.
func ReadGraphFile(path string) (*graph.Graph, error) {
	snap, err := IsSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	if snap {
		return ReadSnapshotFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(f)
}
