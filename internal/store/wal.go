package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"incgraph/internal/graph"
)

// Write-ahead log. The WAL extends a snapshot: every batch ΔG applied
// after the snapshot is appended as one framed record before the graph or
// any engine sees it, so a crash loses at most the batch whose append
// never completed. Recovery is snapshot-load + replay of the valid record
// prefix through the normal Apply path.
//
// # Format (version 1)
//
//	header: magic [8]byte "incgwal1", uint32 version, uint64 startGen
//	        (the graph generation of the snapshot this log extends)
//	record: uint32 payload length | uint32 CRC-32 (IEEE) of payload | payload
//	payload: uint64 seq (1-based, contiguous)
//	         uint64 gen (graph generation when the batch was appended;
//	                     advisory — see Replay)
//	         uvarint update count, then per update:
//	           byte op (0 insert, 1 delete)
//	           varint from, varint to
//	           insert only: uvarint len + bytes from-label, same for to-label
//
// # Torn tails
//
// A crash mid-append leaves a torn tail: a truncated length field, a
// payload shorter than its length, or a CRC mismatch. Replay treats the
// first such frame as the end of the log — the valid prefix is the log —
// and OpenWAL truncates the file there so subsequent appends extend a
// clean tail. Corruption is never fatal to recovery; it only bounds how
// much of the suffix survives.
//
// # Fsync policy
//
// SyncAlways fsyncs after every append: a crashed process loses nothing it
// acknowledged. SyncNone leaves flushing to the OS: bounded data loss on
// power failure, much higher append throughput. Both policies produce
// valid logs; the choice only moves the durability point.

// walMagic identifies WAL files.
var walMagic = [8]byte{'i', 'n', 'c', 'g', 'w', 'a', 'l', '1'}

// WALVersion is the current WAL format revision.
const WALVersion = 1

// walHeaderSize is the fixed header length.
const walHeaderSize = 8 + 4 + 8

// maxWALRecord bounds a single record's payload; frames claiming more are
// treated as corruption, keeping a torn length field from provoking a
// gigantic allocation.
const maxWALRecord = 1 << 30

// ErrBadWAL reports a WAL whose header cannot be parsed. Torn or corrupt
// record tails are NOT errors — they truncate the replay.
var ErrBadWAL = errors.New("store: bad WAL")

// SyncPolicy selects when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append (the default; acknowledged
	// batches survive OS and power failure).
	SyncAlways SyncPolicy = iota
	// SyncNone never fsyncs explicitly; the OS flushes at its leisure.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// WAL is an open write-ahead log positioned for appends.
type WAL struct {
	f      File
	policy SyncPolicy
	seq    uint64 // last appended sequence number
	size   int64
	buf    []byte // reused payload/frame scratch
	// broken is set when a failed append could not be rolled back: the
	// file may hold torn bytes that replay would treat as the end of the
	// log, so acknowledging further appends would silently lose them.
	broken error
}

// ErrWALBroken reports a log wedged by an append failure whose partial
// write could not be truncated away; the caller must checkpoint (starting
// a fresh log) or restart.
var ErrWALBroken = errors.New("store: WAL broken by unrecoverable append failure")

// ReplayRecord is one decoded WAL record: a batch with its stamps.
type ReplayRecord struct {
	// Seq is the contiguous 1-based record index.
	Seq uint64
	// Gen is the graph generation recorded at append time. Advisory: the
	// generation counter's evolution depends on the batch execution path
	// (serial vs shard-parallel), so recovery checks monotonicity, not
	// equality.
	Gen   uint64
	Batch graph.Batch
}

// CreateWAL creates a fresh log at path (truncating any existing file),
// stamped as extending a snapshot at generation startGen.
func CreateWAL(path string, startGen uint64, policy SyncPolicy) (*WAL, error) {
	return CreateWALFS(OS, path, startGen, policy)
}

// CreateWALFS is CreateWAL through an explicit filesystem.
func CreateWALFS(fsys FS, path string, startGen uint64, policy SyncPolicy) (*WAL, error) {
	f, err := fsOrOS(fsys).OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr []byte
	hdr = append(hdr, walMagic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, WALVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, startGen)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	// The header is fsynced under every policy: a manifest must never
	// commit a WAL whose header could vanish in a power loss (SyncNone
	// only relaxes durability of records, not of the log's existence).
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &WAL{f: f, policy: policy, size: int64(len(hdr))}, nil
}

// OpenWAL opens an existing log for appending: it replays the valid record
// prefix (returned for the caller to re-apply), truncates any torn or
// corrupt tail, and positions the log at its clean end.
func OpenWAL(path string, policy SyncPolicy) (*WAL, []ReplayRecord, error) {
	return OpenWALFS(OS, path, policy)
}

// OpenWALFS is OpenWAL through an explicit filesystem.
func OpenWALFS(fsys FS, path string, policy SyncPolicy) (*WAL, []ReplayRecord, error) {
	f, err := fsOrOS(fsys).OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	records, end, _, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{f: f, policy: policy, size: end}
	if n := len(records); n > 0 {
		w.seq = records[n-1].Seq
	}
	return w, records, nil
}

// ReplayWAL decodes the valid record prefix of the log at path without
// modifying the file. It returns the records and the offset at which the
// valid prefix ends (the truncation point a subsequent OpenWAL would use).
func ReplayWAL(path string) ([]ReplayRecord, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	records, end, _, err := replay(f)
	return records, end, err
}

// replay reads records from the header on, stopping at the first torn or
// corrupt frame. It returns the decoded records, the clean end offset, and
// the log's start generation.
func replay(f io.Reader) ([]ReplayRecord, int64, uint64, error) {
	hdr := make([]byte, walHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, 0, 0, fmt.Errorf("%w: short header", ErrBadWAL)
	}
	if [8]byte(hdr[:8]) != walMagic {
		return nil, 0, 0, fmt.Errorf("%w: bad magic", ErrBadWAL)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != WALVersion {
		return nil, 0, 0, fmt.Errorf("%w: unsupported version %d (have %d)", ErrBadWAL, v, WALVersion)
	}
	startGen := binary.LittleEndian.Uint64(hdr[12:])

	var (
		records []ReplayRecord
		end     = int64(walHeaderSize)
		frame   [8]byte
		lastGen = startGen
	)
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			break // clean EOF or torn length field: prefix ends here
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		crc := binary.LittleEndian.Uint32(frame[4:])
		if length > maxWALRecord {
			break // implausible length: corrupt frame
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt payload
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break // CRC-valid but undecodable: treat as corruption, stop
		}
		if rec.Seq != uint64(len(records))+1 || rec.Gen < lastGen {
			break // out-of-sequence record: the prefix before it stands
		}
		lastGen = rec.Gen
		records = append(records, rec)
		end += 8 + int64(length)
	}
	return records, end, startGen, nil
}

// appendFramedRecord appends one complete framed record — header plus
// (seq, gen, batch) payload — to buf, reusing its capacity. It is the one
// encoder behind both the WAL and the per-shard replica logs, so records
// replicated over the wire and records appended locally are byte-identical
// for identical stamps.
func appendFramedRecord(buf []byte, seq, gen uint64, b graph.Batch) ([]byte, error) {
	frame := append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	frame = binary.LittleEndian.AppendUint64(frame, seq)
	frame = binary.LittleEndian.AppendUint64(frame, gen)
	frame = binary.AppendUvarint(frame, uint64(len(b)))
	for _, u := range b {
		switch u.Op {
		case graph.Insert:
			frame = append(frame, 0)
		case graph.Delete:
			frame = append(frame, 1)
		default:
			return frame[:len(buf)], fmt.Errorf("store: record encode: unknown op %v", u.Op)
		}
		frame = binary.AppendVarint(frame, int64(u.From))
		frame = binary.AppendVarint(frame, int64(u.To))
		if u.Op == graph.Insert {
			frame = binary.AppendUvarint(frame, uint64(len(u.FromLabel)))
			frame = append(frame, u.FromLabel...)
			frame = binary.AppendUvarint(frame, uint64(len(u.ToLabel)))
			frame = append(frame, u.ToLabel...)
		}
	}
	payload := frame[len(buf)+8:]
	binary.LittleEndian.PutUint32(frame[len(buf):len(buf)+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[len(buf)+4:len(buf)+8], crc32.ChecksumIEEE(payload))
	return frame, nil
}

// Append encodes b as one record stamped (seq, gen) and writes it,
// fsyncing per the policy. The write-ahead contract is the caller's:
// append first, mutate after.
func (w *WAL) Append(b graph.Batch, gen uint64) error {
	if w.broken != nil {
		return w.broken
	}
	w.seq++
	// The record is built in the reused scratch, so the whole thing goes
	// out in one Write with no per-append allocation (warm), and the
	// common crash leaves either no bytes or a cleanly torn tail, never an
	// interleaving.
	frame, err := appendFramedRecord(w.buf[:0], w.seq, gen, b)
	if err != nil {
		w.seq--
		w.buf = frame[:0]
		return fmt.Errorf("store: WAL append: %w", err)
	}
	w.buf = frame
	_, err = w.f.Write(frame)
	if err == nil {
		w.size += int64(len(frame))
		if w.policy == SyncAlways {
			err = w.f.Sync()
			if err != nil {
				// The record hit the file but its durability was never
				// acknowledged: leaving it would make the durable state
				// diverge from what the caller believes happened (a retry
				// would log the batch twice and wedge recovery).
				w.size -= int64(len(frame))
			}
		}
	}
	if err != nil {
		// A partial write leaves torn bytes that replay would treat as the
		// log's end, and an unsynced-but-written record is a lie about
		// durability — both roll the file back to the last clean end. If
		// even that fails, wedge the log so no further append can be
		// acknowledged after the orphaned bytes. The scratch is emptied so
		// a (contract-violating) Unappend cannot roll back twice.
		w.seq--
		w.buf = w.buf[:0]
		if terr := w.truncateToSize(); terr != nil {
			w.broken = fmt.Errorf("%w: append: %v; truncate: %v", ErrWALBroken, err, terr)
		}
		return err
	}
	return nil
}

// Unappend rolls back the most recent successful Append: the record's
// bytes come off the file end (durably — the truncation is fsynced) and
// the sequence counter steps back, as if the append never happened. Only
// the latest record can be taken back, and only before any further
// append; the caller guarantees that ordering (the coordinator's
// pipelined log holds its order lock from append through commit, so an
// aborted batch unlogs before the next batch logs). A failed truncation
// wedges the log like any rollback failure.
func (w *WAL) Unappend() error {
	if w.broken != nil {
		return w.broken
	}
	if w.seq == 0 || len(w.buf) == 0 {
		return fmt.Errorf("store: WAL unappend: no record to take back")
	}
	w.seq--
	w.size -= int64(len(w.buf))
	w.buf = w.buf[:0]
	if err := w.truncateToSize(); err != nil {
		w.broken = fmt.Errorf("%w: unappend truncate: %v", ErrWALBroken, err)
		return w.broken
	}
	return nil
}

// truncateToSize discards any bytes past the last cleanly appended record
// and makes the truncation durable, so a rolled-back record cannot
// resurface in a later replay.
func (w *WAL) truncateToSize() error {
	if err := w.f.Truncate(w.size); err != nil {
		return err
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		return err
	}
	return w.f.Sync()
}

// decodeRecord parses one CRC-validated payload.
func decodeRecord(payload []byte) (ReplayRecord, error) {
	var rec ReplayRecord
	if len(payload) < 16 {
		return rec, fmt.Errorf("%w: short record", ErrBadWAL)
	}
	rec.Seq = binary.LittleEndian.Uint64(payload)
	rec.Gen = binary.LittleEndian.Uint64(payload[8:])
	off := 16
	n, k := binary.Uvarint(payload[off:])
	// A delete is the smallest update (op byte + two 1-byte varints), so a
	// CRC-valid but corrupt count past len/3 is impossible — reject before
	// the allocation, not after.
	if k <= 0 || n > uint64(len(payload))/3 {
		return rec, fmt.Errorf("%w: bad update count", ErrBadWAL)
	}
	off += k
	rec.Batch = make(graph.Batch, 0, n)
	readVarint := func() (int64, bool) {
		v, k := binary.Varint(payload[off:])
		if k <= 0 {
			return 0, false
		}
		off += k
		return v, true
	}
	readString := func() (string, bool) {
		l, k := binary.Uvarint(payload[off:])
		// Compare against the remaining bytes without addition, so a
		// corrupt length near 2^64 cannot overflow past the check.
		if k <= 0 || l > uint64(len(payload)-off-k) {
			return "", false
		}
		off += k
		s := string(payload[off : off+int(l)])
		off += int(l)
		return s, true
	}
	for i := uint64(0); i < n; i++ {
		if off >= len(payload) {
			return rec, fmt.Errorf("%w: truncated update", ErrBadWAL)
		}
		op := payload[off]
		off++
		from, ok := readVarint()
		if !ok {
			return rec, fmt.Errorf("%w: truncated update", ErrBadWAL)
		}
		to, ok := readVarint()
		if !ok {
			return rec, fmt.Errorf("%w: truncated update", ErrBadWAL)
		}
		u := graph.Update{From: graph.NodeID(from), To: graph.NodeID(to)}
		switch op {
		case 0:
			u.Op = graph.Insert
			if u.FromLabel, ok = readString(); !ok {
				return rec, fmt.Errorf("%w: truncated label", ErrBadWAL)
			}
			if u.ToLabel, ok = readString(); !ok {
				return rec, fmt.Errorf("%w: truncated label", ErrBadWAL)
			}
		case 1:
			u.Op = graph.Delete
		default:
			return rec, fmt.Errorf("%w: unknown op byte %d", ErrBadWAL, op)
		}
		rec.Batch = append(rec.Batch, u)
	}
	if off != len(payload) {
		return rec, fmt.Errorf("%w: %d trailing bytes", ErrBadWAL, len(payload)-off)
	}
	return rec, nil
}

// Seq returns the sequence number of the last appended record.
func (w *WAL) Seq() uint64 { return w.seq }

// Broken returns the wedging error set by an append failure whose partial
// write could not be rolled back, or nil while the log is appendable. A
// broken log is recovered by checkpointing (which starts a fresh log).
func (w *WAL) Broken() error { return w.broken }

// Size returns the current log size in bytes.
func (w *WAL) Size() int64 { return w.size }

// Sync forces an fsync regardless of policy.
func (w *WAL) Sync() error { return w.f.Sync() }

// Close syncs (under SyncAlways) and closes the log.
func (w *WAL) Close() error {
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}
