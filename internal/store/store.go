package store

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"incgraph/internal/graph"
)

// Store composes snapshots and the WAL into a crash-safe checkpoint/
// recover cycle over one directory:
//
//	dir/MANIFEST          which snapshot+WAL pair is current
//	dir/snap-NNNNNNNN.snap  per-shard binary snapshot (epoch NNNNNNNN)
//	dir/wal-NNNNNNNN.log    ΔG batches appended since that snapshot
//
// The manifest is the commit point. Checkpoint writes the new snapshot
// and a fresh WAL under the next epoch, atomically renames the new
// manifest over the old one, and only then deletes the previous epoch's
// files — a crash at any point leaves either the old pair or the new pair
// fully intact. Open reads the manifest, loads the snapshot, and replays
// the WAL's valid prefix; torn WAL tails truncate, they never fail
// recovery.
type Store struct {
	dir    string
	opts   Options
	epoch  uint64
	snap   string // current snapshot file name (relative to dir)
	wal    *WAL
	walRel string // current WAL file name (relative to dir)
}

// Options tunes a store.
type Options struct {
	// Sync is the WAL fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// FS routes the store's write-path file operations; nil means the
	// real filesystem. Set a *FaultFS here to drill disk failures.
	FS FS
}

// manifestName is the commit-point file inside a store directory.
const manifestName = "MANIFEST"

// manifestVersion guards the manifest schema.
const manifestVersion = 1

// ErrNoStore reports a directory with no store in it.
var ErrNoStore = errors.New("store: no store in directory")

// Exists reports whether dir contains a store (a readable manifest).
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Create initializes a store at dir from the current state of g: snapshot
// of g as epoch 1, an empty WAL, and the manifest committing the pair.
// The directory is created if needed and must not already hold a store.
func Create(dir string, g *graph.Graph, opts Options) (*Store, error) {
	if err := fsOrOS(opts.FS).MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if Exists(dir) {
		return nil, fmt.Errorf("store: %s already holds a store", dir)
	}
	s := &Store{dir: dir, opts: opts, epoch: 1}
	s.snap = snapName(s.epoch)
	s.walRel = walName(s.epoch)
	if err := WriteSnapshotFileFS(s.fs(), filepath.Join(dir, s.snap), g); err != nil {
		return nil, err
	}
	w, err := CreateWALFS(s.fs(), filepath.Join(dir, s.walRel), g.Generation(), opts.Sync)
	if err != nil {
		return nil, err
	}
	s.wal = w
	if _, err := s.writeManifest(); err != nil {
		w.Close()
		return nil, err
	}
	return s, nil
}

// Open opens the store at dir: it loads the manifest's snapshot into a
// fresh graph and replays the WAL's valid prefix, truncating any torn
// tail. The returned records have NOT been applied to the graph — the
// caller replays them through its normal Apply path (so maintained
// answers are repaired exactly as they were the first time), or over the
// bare graph with ApplyBatch when no engines are attached.
func Open(dir string, opts Options) (*Store, *graph.Graph, []ReplayRecord, error) {
	epoch, snapRel, walRel, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := ReadSnapshotFile(filepath.Join(dir, snapRel))
	if err != nil {
		return nil, nil, nil, err
	}
	w, records, err := OpenWALFS(opts.FS, filepath.Join(dir, walRel), opts.Sync)
	if err != nil {
		return nil, nil, nil, err
	}
	s := &Store{dir: dir, opts: opts, epoch: epoch, snap: snapRel, wal: w, walRel: walRel}
	return s, g, records, nil
}

// Append logs one batch (stamped with the graph generation at append
// time) ahead of its application. Fsync policy per Options.
func (s *Store) Append(b graph.Batch, gen uint64) error {
	return s.wal.Append(b, gen)
}

// Unappend durably rolls back the latest Append before any further
// append — the write-ahead half of a batch whose distributed phase 1
// failed after logging. See WAL.Unappend for the contract.
func (s *Store) Unappend() error {
	return s.wal.Unappend()
}

// Checkpoint makes g the new durable baseline: snapshot under the next
// epoch, fresh WAL, manifest flip, then removal of the superseded pair.
func (s *Store) Checkpoint(g *graph.Graph) error {
	oldSnap, oldWALRel, oldWAL := s.snap, s.walRel, s.wal
	epoch := s.epoch + 1
	snapRel, walRel := snapName(epoch), walName(epoch)
	if err := WriteSnapshotFileFS(s.fs(), filepath.Join(s.dir, snapRel), g); err != nil {
		return err
	}
	w, err := CreateWALFS(s.fs(), filepath.Join(s.dir, walRel), g.Generation(), s.opts.Sync)
	if err != nil {
		s.fs().Remove(filepath.Join(s.dir, snapRel))
		return err
	}
	s.epoch, s.snap, s.walRel, s.wal = epoch, snapRel, walRel, w
	committed, err := s.writeManifest()
	if err != nil && !committed {
		// The manifest rename never happened: the old pair is still the
		// committed one. Roll back to it and discard the new files.
		s.epoch, s.snap, s.walRel, s.wal = epoch-1, oldSnap, oldWALRel, oldWAL
		w.Close()
		s.fs().Remove(filepath.Join(s.dir, snapRel))
		s.fs().Remove(filepath.Join(s.dir, walRel))
		return err
	}
	if err != nil {
		// The rename succeeded but its durability is uncertain (directory
		// fsync failed): after a crash the manifest may name either pair,
		// so keep both on disk and surface the degraded durability.
		oldWAL.Close()
		return err
	}
	oldWAL.Close()
	s.fs().Remove(filepath.Join(s.dir, oldSnap))
	s.fs().Remove(filepath.Join(s.dir, oldWALRel))
	return nil
}

// WALSize returns the current WAL size in bytes: the natural
// checkpoint-threshold signal.
func (s *Store) WALSize() int64 { return s.wal.Size() }

// WALSeq returns the sequence number of the last logged batch.
func (s *Store) WALSeq() uint64 { return s.wal.Seq() }

// Epoch returns the current checkpoint epoch.
func (s *Store) Epoch() uint64 { return s.epoch }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Sync forces a WAL fsync regardless of policy.
func (s *Store) Sync() error { return s.wal.Sync() }

// Close closes the WAL. The store stays openable.
func (s *Store) Close() error { return s.wal.Close() }

func snapName(epoch uint64) string { return fmt.Sprintf("snap-%08d.snap", epoch) }
func walName(epoch uint64) string  { return fmt.Sprintf("wal-%08d.log", epoch) }

// writeManifest commits the current (snapshot, WAL) pair: temp file,
// fsync, atomic rename, directory fsync. committed reports whether the
// rename — the commit point — happened; it can be true even on error
// (directory fsync failure), in which case the commit is real but its
// crash-durability is uncertain.
func (s *Store) writeManifest() (committed bool, err error) {
	tmp, err := s.fs().CreateTemp(s.dir, ".manifest-*")
	if err != nil {
		return false, err
	}
	defer s.fs().Remove(tmp.Name())
	_, err = fmt.Fprintf(tmp, "incgraph-store %d\nepoch %d\nsnapshot %s\nwal %s\n",
		manifestVersion, s.epoch, s.snap, s.walRel)
	if err != nil {
		tmp.Close()
		return false, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return false, err
	}
	if err := tmp.Close(); err != nil {
		return false, err
	}
	if err := s.fs().Rename(tmp.Name(), filepath.Join(s.dir, manifestName)); err != nil {
		return false, err
	}
	return true, s.fs().SyncDir(s.dir)
}

// readManifest parses the commit-point file.
func readManifest(path string) (epoch uint64, snap, wal string, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, "", "", fmt.Errorf("%w: %s", ErrNoStore, filepath.Dir(path))
		}
		return 0, "", "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			return 0, "", "", fmt.Errorf("store: manifest line %d: want 'key value'", line)
		}
		switch fields[0] {
		case "incgraph-store":
			v, perr := strconv.Atoi(fields[1])
			if perr != nil || v != manifestVersion {
				return 0, "", "", fmt.Errorf("store: unsupported manifest version %q", fields[1])
			}
		case "epoch":
			if epoch, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
				return 0, "", "", fmt.Errorf("store: manifest line %d: %v", line, err)
			}
		case "snapshot":
			snap = fields[1]
		case "wal":
			wal = fields[1]
		default:
			// Unknown keys are ignored for forward compatibility.
		}
	}
	if err := sc.Err(); err != nil {
		return 0, "", "", err
	}
	if snap == "" || wal == "" {
		return 0, "", "", fmt.Errorf("store: manifest missing snapshot or wal entry")
	}
	return epoch, snap, wal, nil
}

// fs returns the store's filesystem, defaulting to the real one.
func (s *Store) fs() FS { return fsOrOS(s.opts.FS) }

// WALBroken returns the wedging error of a WAL whose failed append could
// not be rolled back (nil while appends can still be acknowledged).
func (s *Store) WALBroken() error { return s.wal.Broken() }
