package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"incgraph/internal/graph"
)

func walBatches() []graph.Batch {
	return []graph.Batch{
		{graph.InsNew(1, 2, "a", "b"), graph.InsNew(2, 3, "b", "c")},
		{graph.Del(1, 2)},
		{graph.InsNew(3, 1, "c", "a"), graph.Del(2, 3), graph.InsNew(1, 2, "a", "b")},
	}
}

func TestWALAppendReplay(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			w, err := CreateWAL(path, 7, policy)
			if err != nil {
				t.Fatal(err)
			}
			batches := walBatches()
			for i, b := range batches {
				if err := w.Append(b, uint64(10+i)); err != nil {
					t.Fatal(err)
				}
			}
			if w.Seq() != uint64(len(batches)) {
				t.Fatalf("seq = %d, want %d", w.Seq(), len(batches))
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			records, _, err := ReplayWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(records) != len(batches) {
				t.Fatalf("replayed %d records, want %d", len(records), len(batches))
			}
			for i, rec := range records {
				if rec.Seq != uint64(i+1) || rec.Gen != uint64(10+i) {
					t.Fatalf("record %d stamped (%d,%d)", i, rec.Seq, rec.Gen)
				}
				if !reflect.DeepEqual(rec.Batch, batches[i]) {
					t.Fatalf("record %d batch mismatch:\n got %v\nwant %v", i, rec.Batch, batches[i])
				}
			}
		})
	}
}

// TestWALTornTail verifies the truncation-safe replay contract: cutting
// the log at every possible byte boundary inside the last record must
// recover exactly the records before it, and OpenWAL must truncate and
// remain appendable.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := CreateWAL(path, 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	batches := walBatches()
	var sizes []int64
	for _, b := range batches {
		if err := w.Append(b, 0); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, w.Size())
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	recordsBefore := func(cut int64) int {
		n := 0
		for _, s := range sizes {
			if s <= cut {
				n++
			}
		}
		return n
	}
	for cut := sizes[len(sizes)-2] + 1; cut < sizes[len(sizes)-1]; cut += 3 {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d.log", cut))
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		records, end, err := ReplayWAL(torn)
		if err != nil {
			t.Fatalf("cut %d: replay failed: %v", cut, err)
		}
		if len(records) != recordsBefore(cut) {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(records), recordsBefore(cut))
		}
		if end != sizes[len(sizes)-2] {
			t.Fatalf("cut %d: clean end %d, want %d", cut, end, sizes[len(sizes)-2])
		}
	}

	// Corrupt CRC mid-frame of the final record: same truncation.
	bad := append([]byte(nil), full...)
	bad[sizes[len(sizes)-2]+4] ^= 0xA5 // CRC field of last frame
	tornPath := filepath.Join(dir, "crc.log")
	if err := os.WriteFile(tornPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	records, end, err := ReplayWAL(tornPath)
	if err != nil || len(records) != len(batches)-1 {
		t.Fatalf("corrupt CRC: records=%d err=%v", len(records), err)
	}
	if end != sizes[len(sizes)-2] {
		t.Fatalf("corrupt CRC: end=%d want %d", end, sizes[len(sizes)-2])
	}

	// OpenWAL truncates the tail and stays appendable.
	w2, records, err := OpenWAL(tornPath, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(batches)-1 {
		t.Fatalf("OpenWAL replayed %d records", len(records))
	}
	if err := w2.Append(graph.Batch{graph.InsNew(9, 10, "x", "y")}, 99); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	records, _, err = ReplayWAL(tornPath)
	if err != nil || len(records) != len(batches) {
		t.Fatalf("after truncate+append: records=%d err=%v", len(records), err)
	}
	if records[len(records)-1].Seq != uint64(len(batches)) {
		t.Fatalf("appended record has seq %d", records[len(records)-1].Seq)
	}
}

// TestWALCorruptRecordNeverFatal hand-crafts CRC-valid but undecodable
// records — a label length near 2^64 (the overflow probe) and an
// implausible update count — and requires recovery to truncate at them
// rather than panic or over-allocate.
func TestWALCorruptRecordNeverFatal(t *testing.T) {
	mkPayload := func(poison func(p []byte) []byte) []byte {
		var p []byte
		p = binary.LittleEndian.AppendUint64(p, 2) // seq (record #2)
		p = binary.LittleEndian.AppendUint64(p, 0) // gen
		return poison(p)
	}
	cases := map[string]func(p []byte) []byte{
		"huge label length": func(p []byte) []byte {
			p = binary.AppendUvarint(p, 1)          // one update
			p = append(p, 0)                        // insert
			p = binary.AppendVarint(p, 1)           // from
			p = binary.AppendVarint(p, 2)           // to
			p = binary.AppendUvarint(p, ^uint64(0)) // from-label length: 2^64-1
			return p
		},
		"huge update count": func(p []byte) []byte {
			return binary.AppendUvarint(p, ^uint64(0)>>1)
		},
	}
	for name, poison := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			w, err := CreateWAL(path, 0, SyncAlways)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Append(graph.Batch{graph.InsNew(1, 2, "a", "b")}, 0); err != nil {
				t.Fatal(err)
			}
			goodEnd := w.Size()
			w.Close()

			payload := mkPayload(poison)
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			var frame []byte
			frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
			frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
			frame = append(frame, payload...)
			if _, err := f.Write(frame); err != nil {
				t.Fatal(err)
			}
			f.Close()

			records, end, err := ReplayWAL(path)
			if err != nil {
				t.Fatalf("replay must not fail: %v", err)
			}
			if len(records) != 1 || end != goodEnd {
				t.Fatalf("records=%d end=%d, want 1 record ending at %d", len(records), end, goodEnd)
			}
		})
	}
}

func TestStoreCheckpointCycle(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 4, 200, 800)
	s, err := Create(dir, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists = false after Create")
	}
	if _, err := Create(dir, g, Options{}); err == nil {
		t.Fatal("second Create must fail")
	}

	// Log two batches and apply them.
	b1 := graph.Batch{graph.InsNew(10_001, 10_002, "n", "n")}
	b2 := graph.Batch{graph.InsNew(10_002, 10_003, "n", "n")}
	for _, b := range []graph.Batch{b1, b2} {
		if err := s.Append(b, g.Generation()); err != nil {
			t.Fatal(err)
		}
		if err := g.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Reopen: snapshot + replay reconstructs g.
	s2, h, records, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("replayed %d records, want 2", len(records))
	}
	for _, rec := range records {
		if err := h.ApplyBatch(rec.Batch); err != nil {
			t.Fatal(err)
		}
	}
	if !g.Equal(h) {
		t.Fatal("recovered graph differs")
	}

	// Checkpoint folds the WAL into a new snapshot; old files go away.
	if err := s2.Checkpoint(h); err != nil {
		t.Fatal(err)
	}
	if s2.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", s2.Epoch())
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(1))); !os.IsNotExist(err) {
		t.Fatal("old snapshot not removed")
	}
	s2.Close()

	_, h2, records, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("fresh WAL has %d records", len(records))
	}
	if !g.Equal(h2) {
		t.Fatal("post-checkpoint recovery differs")
	}
}

func TestOpenMissingStore(t *testing.T) {
	if _, _, _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Fatal("want ErrNoStore")
	}
}

func mustCreate(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
