package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"incgraph/internal/graph"
)

// EncodeRecord serializes one (seq, gen, batch) record payload in the
// WAL's record encoding without the length+CRC framing — replication
// ships records inside the cluster's own integrity-framed messages, so
// the file framing would be redundant on the wire.
func EncodeRecord(seq, gen uint64, b graph.Batch) ([]byte, error) {
	frame, err := appendFramedRecord(nil, seq, gen, b)
	if err != nil {
		return nil, err
	}
	return frame[8:], nil
}

// DecodeRecord parses a record payload produced by EncodeRecord (or
// carried inside a WAL frame).
func DecodeRecord(payload []byte) (ReplayRecord, error) {
	return decodeRecord(payload)
}

// Per-shard replica logs. A ReplicaLog is the worker-side half of WAL
// replication: for every shard a worker owns it keeps an append-only log
// of the coordinator's committed records that touched that shard, in the
// WAL's exact record framing, so the cluster's durable history survives
// the loss of the coordinator's disk. Unlike the coordinator's WAL, a
// shard's log is *sparse* in the global sequence — a shard only sees the
// records that touched it — so continuity cannot be checked by seq
// arithmetic alone. Instead every replicated record carries the sequence
// number of the previous record that touched the shard (prevSeq), forming
// a per-shard hash-chain-without-the-hash: Append rejects a record whose
// prevSeq does not equal the log's last sequence (ErrSeqGap), which is how
// a replica that missed a record — worker restart, dropped frame, torn
// tail — detects the gap and forces the coordinator's parcel resync.
//
// # File format (file-backed mode, one file per shard)
//
//	header: magic [8]byte "incgrpl1", uint32 version, uint64 shard,
//	        uint64 baseSeq (the coordinator sequence the shard's replica
//	        was last placed/reset at; records continue from there)
//	records: the WAL's length+CRC record framing, sequence numbers
//	        strictly increasing (not contiguous — the log is sparse)
//
// Torn tails truncate exactly like the WAL's: the valid prefix is the
// log, and the resulting regressed last-sequence surfaces as a gap on the
// next Append, which heals through resync. In memory mode (no directory)
// the same state machine runs without files — the mode used by in-process
// workers in tests and benchmarks.

// replMagic identifies per-shard replica log files.
var replMagic = [8]byte{'i', 'n', 'c', 'g', 'r', 'p', 'l', '1'}

// ReplVersion is the current replica log format revision.
const ReplVersion = 1

// replHeaderSize is the fixed header length: magic, version, shard, baseSeq.
const replHeaderSize = 8 + 4 + 8 + 8

// ErrSeqGap reports a replicated record whose prevSeq does not match the
// shard log's last sequence: the replica missed at least one record and
// must be resynced from an authoritative parcel.
var ErrSeqGap = errors.New("store: replica log sequence gap")

// ErrBadReplLog reports a replica log file whose header cannot be parsed.
var ErrBadReplLog = errors.New("store: bad replica log")

// shardLog is one shard's log state.
type shardLog struct {
	f       File // nil in memory mode
	baseSeq uint64
	lastSeq uint64
	records int
	size    int64
}

// ReplicaLog manages the per-shard logs of one worker. Not safe for
// concurrent use; the worker's request mutex serializes access.
type ReplicaLog struct {
	dir    string // "" = memory mode
	fsys   FS
	policy SyncPolicy
	shards map[int]*shardLog
	buf    []byte // reused frame scratch
}

// NewMemReplicaLog returns a memory-mode replica log: the gap-detection
// state machine without files. Used by in-process workers.
func NewMemReplicaLog() *ReplicaLog {
	return &ReplicaLog{shards: make(map[int]*shardLog)}
}

// OpenReplicaLog opens (creating if needed) a file-backed replica log in
// dir: every repl-*.log file is scanned, its valid record prefix replayed
// and any torn tail truncated, restoring each shard's (baseSeq, lastSeq)
// so gap detection spans worker restarts.
func OpenReplicaLog(dir string, policy SyncPolicy) (*ReplicaLog, error) {
	return OpenReplicaLogFS(OS, dir, policy)
}

// OpenReplicaLogFS is OpenReplicaLog through an explicit filesystem.
func OpenReplicaLogFS(fsys FS, dir string, policy SyncPolicy) (*ReplicaLog, error) {
	fsys = fsOrOS(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &ReplicaLog{dir: dir, fsys: fsys, policy: policy, shards: make(map[int]*shardLog)}
	names, err := fsys.Glob(filepath.Join(dir, "repl-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		sl, shard, err := openShardLog(fsys, name)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		l.shards[shard] = sl
	}
	return l, nil
}

// openShardLog opens one shard file, replays its valid prefix and
// truncates any torn tail, leaving it positioned for appends.
func openShardLog(fsys FS, path string) (*shardLog, int, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	hdr := make([]byte, replHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("%w: short header", ErrBadReplLog)
	}
	if [8]byte(hdr[:8]) != replMagic {
		f.Close()
		return nil, 0, fmt.Errorf("%w: bad magic", ErrBadReplLog)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != ReplVersion {
		f.Close()
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrBadReplLog, v)
	}
	shard := binary.LittleEndian.Uint64(hdr[12:])
	sl := &shardLog{f: f, baseSeq: binary.LittleEndian.Uint64(hdr[20:])}
	sl.lastSeq = sl.baseSeq
	sl.size = int64(replHeaderSize)
	var frame [8]byte
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			break // clean EOF or torn length: prefix ends here
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		crc := binary.LittleEndian.Uint32(frame[4:])
		if length > maxWALRecord {
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt payload
		}
		rec, err := decodeRecord(payload)
		if err != nil || rec.Seq <= sl.lastSeq {
			break // undecodable or non-monotonic: the prefix before it stands
		}
		sl.lastSeq = rec.Seq
		sl.records++
		sl.size += 8 + int64(length)
	}
	if err := f.Truncate(sl.size); err != nil {
		f.Close()
		return nil, 0, err
	}
	if _, err := f.Seek(sl.size, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, err
	}
	return sl, int(shard), nil
}

// Reset (re)initializes shard s's log at sequence seq: the state a replica
// is in right after an authoritative parcel placement — the parcel already
// embodies every record through seq, so the log restarts empty there. Any
// previous log content for the shard is discarded.
func (l *ReplicaLog) Reset(s int, seq uint64) error {
	if old := l.shards[s]; old != nil && old.f != nil {
		old.f.Close()
	}
	sl := &shardLog{baseSeq: seq, lastSeq: seq, size: int64(replHeaderSize)}
	if l.dir != "" {
		f, err := l.fs().OpenFile(l.path(s), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		var hdr []byte
		hdr = append(hdr, replMagic[:]...)
		hdr = binary.LittleEndian.AppendUint32(hdr, ReplVersion)
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(s))
		hdr = binary.LittleEndian.AppendUint64(hdr, seq)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return err
		}
		// Like the WAL header, the log's existence is durable under every
		// policy; only record durability is policy-relaxed.
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		sl.f = f
	}
	l.shards[s] = sl
	return nil
}

// Append appends one replicated record to shard s's log. prevSeq is the
// coordinator's sequence of the previous record that touched the shard;
// a mismatch with the log's last sequence returns ErrSeqGap and appends
// nothing — the caller reports the gap so the coordinator resyncs.
func (l *ReplicaLog) Append(s int, prevSeq uint64, rec ReplayRecord) error {
	sl, ok := l.shards[s]
	if !ok {
		return fmt.Errorf("%w: shard %d has no replica log (never placed)", ErrSeqGap, s)
	}
	if sl.lastSeq != prevSeq {
		return fmt.Errorf("%w: shard %d at seq %d, record chains from %d", ErrSeqGap, s, sl.lastSeq, prevSeq)
	}
	if rec.Seq <= sl.lastSeq {
		return fmt.Errorf("%w: shard %d at seq %d, record seq %d not ahead", ErrSeqGap, s, sl.lastSeq, rec.Seq)
	}
	if sl.f != nil {
		frame, err := appendFramedRecord(l.buf[:0], rec.Seq, rec.Gen, rec.Batch)
		l.buf = frame[:0]
		if err != nil {
			return err
		}
		if _, err := sl.f.Write(frame); err != nil {
			// Roll back any torn bytes so replay cannot resurface them; a
			// failed truncate leaves the torn tail, which the next open
			// truncates and the resulting seq regression heals as a gap.
			sl.f.Truncate(sl.size)
			sl.f.Seek(sl.size, io.SeekStart)
			return err
		}
		if l.policy == SyncAlways {
			if err := sl.f.Sync(); err != nil {
				sl.f.Truncate(sl.size)
				sl.f.Seek(sl.size, io.SeekStart)
				return err
			}
		}
		sl.size += int64(len(frame))
	}
	sl.lastSeq = rec.Seq
	sl.records++
	return nil
}

// Drop discards shard s's log (the shard replica was dropped).
func (l *ReplicaLog) Drop(s int) error {
	sl, ok := l.shards[s]
	if !ok {
		return nil
	}
	delete(l.shards, s)
	if sl.f != nil {
		sl.f.Close()
		return l.fs().Remove(l.path(s))
	}
	return nil
}

// LastSeq returns shard s's last logged sequence and whether the shard has
// a log at all.
func (l *ReplicaLog) LastSeq(s int) (uint64, bool) {
	sl, ok := l.shards[s]
	if !ok {
		return 0, false
	}
	return sl.lastSeq, true
}

// Records returns the number of records appended to shard s's log since
// its last reset.
func (l *ReplicaLog) Records(s int) int {
	sl, ok := l.shards[s]
	if !ok {
		return 0
	}
	return sl.records
}

// Shards returns the shards holding logs, sorted.
func (l *ReplicaLog) Shards() []int {
	out := make([]int, 0, len(l.shards))
	for s := range l.shards {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Replay decodes shard s's logged records in append order (file-backed
// mode only; memory mode retains no payloads).
func (l *ReplicaLog) Replay(s int) ([]ReplayRecord, error) {
	sl, ok := l.shards[s]
	if !ok || sl.f == nil {
		return nil, nil
	}
	if err := sl.f.Sync(); err != nil {
		return nil, err
	}
	data, err := l.readFile(s)
	if err != nil {
		return nil, err
	}
	var out []ReplayRecord
	off := replHeaderSize
	for off+8 <= len(data) {
		length := binary.LittleEndian.Uint32(data[off:])
		if off+8+int(length) > len(data) {
			break
		}
		rec, err := decodeRecord(data[off+8 : off+8+int(length)])
		if err != nil {
			break
		}
		out = append(out, rec)
		off += 8 + int(length)
	}
	return out, nil
}

// Close closes every shard file. The log remains reopenable.
func (l *ReplicaLog) Close() error {
	var first error
	for _, sl := range l.shards {
		if sl.f != nil {
			if err := sl.f.Close(); err != nil && first == nil {
				first = err
			}
			sl.f = nil
		}
	}
	return first
}

func (l *ReplicaLog) path(s int) string {
	return filepath.Join(l.dir, fmt.Sprintf("repl-%03d.log", s))
}

// fs returns the log's filesystem, defaulting to the real one.
func (l *ReplicaLog) fs() FS { return fsOrOS(l.fsys) }

// readFile reads shard s's log file in full through the filesystem seam.
func (l *ReplicaLog) readFile(s int) ([]byte, error) {
	f, err := l.fs().OpenFile(l.path(s), os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// ErrReplDamaged reports a replica log whose on-disk bytes no longer back
// the state the replica acknowledged: the durable record prefix ends
// before the in-memory last sequence (bit flip, torn overwrite, external
// truncation). The replica must be resynced from an authoritative parcel.
var ErrReplDamaged = errors.New("store: replica log damaged")

// Verify re-reads shard s's log file and checks that its valid record
// prefix still backs the acknowledged in-memory state. It returns nil for
// an intact log (and always in memory mode, which has no file to rot) and
// an ErrReplDamaged-wrapped error when the durable prefix has regressed —
// the anti-entropy scrubber's disk-side check.
func (l *ReplicaLog) Verify(s int) error {
	sl, ok := l.shards[s]
	if !ok || sl.f == nil {
		return nil
	}
	data, err := l.readFile(s)
	if err != nil {
		return fmt.Errorf("%w: shard %d: %v", ErrReplDamaged, s, err)
	}
	if len(data) < replHeaderSize {
		return fmt.Errorf("%w: shard %d: short header", ErrReplDamaged, s)
	}
	if [8]byte(data[:8]) != replMagic ||
		binary.LittleEndian.Uint32(data[8:]) != ReplVersion ||
		binary.LittleEndian.Uint64(data[12:]) != uint64(s) ||
		binary.LittleEndian.Uint64(data[20:]) != sl.baseSeq {
		return fmt.Errorf("%w: shard %d: corrupt header", ErrReplDamaged, s)
	}
	lastSeq, records := sl.baseSeq, 0
	off := replHeaderSize
	for off+8 <= len(data) {
		length := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if length > maxWALRecord || off+8+int(length) > len(data) {
			break
		}
		payload := data[off+8 : off+8+int(length)]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil || rec.Seq <= lastSeq {
			break
		}
		lastSeq = rec.Seq
		records++
		off += 8 + int(length)
	}
	if lastSeq < sl.lastSeq || records < sl.records {
		return fmt.Errorf("%w: shard %d: durable prefix ends at seq %d (%d records), acknowledged through seq %d (%d records)",
			ErrReplDamaged, s, lastSeq, records, sl.lastSeq, sl.records)
	}
	return nil
}
