package store

import (
	"bytes"
	"errors"
	"testing"

	"incgraph/internal/gen"
	"incgraph/internal/graph"
)

func parcelGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := gen.Synthetic(gen.GraphSpec{Nodes: 300, Edges: 1200, Labels: 7, GiantSCCFrac: 0.4, Seed: 4})
	g.SetShards(8)
	return g
}

// TestParcelRoundTrip ships every shard through the parcel codec into a
// container graph and requires the re-exported parcels to be
// byte-identical — the property the cluster coordinator's replica
// verification rests on.
func TestParcelRoundTrip(t *testing.T) {
	g := parcelGraph(t)
	container := graph.NewSharded(g.NumShards())
	for s := 0; s < g.NumShards(); s++ {
		parcel, err := EncodeShardParcel(g, s)
		if err != nil {
			t.Fatalf("encode shard %d: %v", s, err)
		}
		st, err := DecodeShardParcel(parcel, s, g.NumShards())
		if err != nil {
			t.Fatalf("decode shard %d: %v", s, err)
		}
		if err := container.LoadShard(s, st); err != nil {
			t.Fatalf("load shard %d: %v", s, err)
		}
		back, err := EncodeShardParcel(container, s)
		if err != nil {
			t.Fatalf("re-encode shard %d: %v", s, err)
		}
		if !bytes.Equal(parcel, back) {
			t.Fatalf("shard %d parcel not byte-identical after round trip (%d vs %d bytes)",
				s, len(parcel), len(back))
		}
	}
}

// TestParcelAfterEffects drives the remote phase-1 path: a container graph
// built from parcels applies the exported ShardEffects of a batch and must
// re-export parcels byte-identical to the authoritative graph that applied
// the same batch via ApplyBatch.
func TestParcelAfterEffects(t *testing.T) {
	g := parcelGraph(t)
	container := graph.NewSharded(g.NumShards())
	for s := 0; s < g.NumShards(); s++ {
		parcel, err := EncodeShardParcel(g, s)
		if err != nil {
			t.Fatal(err)
		}
		st, err := DecodeShardParcel(parcel, s, g.NumShards())
		if err != nil {
			t.Fatal(err)
		}
		if err := container.LoadShard(s, st); err != nil {
			t.Fatal(err)
		}
	}
	scratch := g.Clone()
	for round := 0; round < 4; round++ {
		b := gen.Updates(scratch, gen.UpdateSpec{Count: 70, InsertRatio: 0.6, Locality: 0.4, Seed: int64(30 + round)})
		if err := scratch.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		effs, ok := g.PlanShardEffects(b)
		if !ok {
			t.Fatalf("round %d: plan failed for a valid batch", round)
		}
		for _, e := range effs {
			want := e.EdgeDelta(g)
			got, err := container.ApplyShardEffects(e)
			if err != nil {
				t.Fatalf("round %d shard %d: %v", round, e.Shard, err)
			}
			if got != want {
				t.Fatalf("round %d shard %d: edge delta %d, want %d", round, e.Shard, got, want)
			}
		}
		if err := g.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < g.NumShards(); s++ {
			auth, err := EncodeShardParcel(g, s)
			if err != nil {
				t.Fatal(err)
			}
			repl, err := EncodeShardParcel(container, s)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(auth, repl) {
				t.Fatalf("round %d: shard %d replica diverged from authoritative state", round, s)
			}
		}
	}
}

func TestParcelRejectsCorruption(t *testing.T) {
	g := parcelGraph(t)
	parcel, err := EncodeShardParcel(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every boundary must error, never panic or succeed
	// with partial state.
	for cut := 0; cut < len(parcel); cut++ {
		if _, err := DecodeShardParcel(parcel[:cut], 3, g.NumShards()); err == nil {
			t.Fatalf("truncated parcel at %d decoded", cut)
		}
	}
	// The wrong shard index must be rejected (nodes hash elsewhere);
	// LoadShard would also catch it, but the decoder checks slots.
	if st, err := DecodeShardParcel(parcel, 3, g.NumShards()); err != nil {
		t.Fatal(err)
	} else {
		fresh := graph.NewSharded(g.NumShards())
		if err := fresh.LoadShard(4, st); err == nil {
			t.Fatal("parcel of shard 3 loaded as shard 4")
		}
	}
	if _, err := DecodeShardParcel(nil, 0, g.NumShards()); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("empty parcel: got %v, want ErrBadSnapshot", err)
	}
}
