package reduction

import (
	"math/rand"
	"testing"

	"incgraph/internal/graph"
	"incgraph/internal/reach"
	"incgraph/internal/rpq"
)

func TestFMapsReachabilityToMatches(t *testing.T) {
	g := graph.New()
	for i := 0; i < 5; i++ {
		g.AddNode(graph.NodeID(i), "n")
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4) // unreachable from 0
	inst, err := F(SSRPInstance{G: g, Src: 0})
	if err != nil {
		t.Fatal(err)
	}
	e, err := rpq.NewEngine(inst.G, inst.Q, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := reach.Build(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Nodes(func(v graph.NodeID, _ string) bool {
		if s.Reachable(v) != e.HasMatch(0, v) {
			t.Fatalf("node %d: SSRP %v, RPQ %v", v, s.Reachable(v), e.HasMatch(0, v))
		}
		return true
	})
	if _, err := F(SSRPInstance{G: g, Src: 99}); err == nil {
		t.Fatalf("missing source accepted")
	}
}

func TestReductionCommutesUnderDeletions(t *testing.T) {
	// The ∆-reduction square: updating the SSRP instance directly and
	// updating the RPQ image via f_i, then mapping ΔO₂ back with f_o, must
	// give the same reachability changes.
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10
		g := graph.New()
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i), "n")
		}
		for i := 0; i < 18; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		inst, err := F(SSRPInstance{G: g.Clone(), Src: 0})
		if err != nil {
			t.Fatal(err)
		}
		e, err := rpq.NewEngine(inst.G, inst.Q, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := reach.Build(g, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 20; step++ {
			es := g.EdgesSorted()
			if len(es) == 0 {
				break
			}
			pick := es[rng.Intn(len(es))]
			du := graph.Del(pick.From, pick.To)

			removed, err := s.ApplyDelete(du)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := e.ApplyDelete(Fi(du))
			if err != nil {
				t.Fatal(err)
			}
			nowReach, nowUnreach, err := Fo(0, d2)
			if err != nil {
				t.Fatal(err)
			}
			if len(nowReach) != 0 {
				t.Fatalf("deletion made nodes reachable: %v", nowReach)
			}
			if len(nowUnreach) != len(removed) {
				t.Fatalf("seed %d step %d: fo gives %v, SSRP says %v", seed, step, nowUnreach, removed)
			}
			for i := range removed {
				if nowUnreach[i] != removed[i] {
					t.Fatalf("seed %d: fo mismatch: %v vs %v", seed, nowUnreach, removed)
				}
			}
		}
	}
}

func TestInsertionGadget(t *testing.T) {
	gad, err := NewInsertionGadget(6)
	if err != nil {
		t.Fatal(err)
	}
	e, err := rpq.NewEngine(gad.G, gad.Q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumMatches() != 0 {
		t.Fatalf("gadget must start with no matches")
	}
	d1, err := e.ApplyInsert(gad.BridgeAB)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Empty() {
		t.Fatalf("first bridge alone changed the output: %+v", d1)
	}
	d2, err := e.ApplyInsert(gad.BridgeBC)
	if err != nil {
		t.Fatal(err)
	}
	// |ΔG| = 1 but |ΔO| = n: the unboundedness witness.
	if len(d2.Added) != gad.N {
		t.Fatalf("second bridge added %d matches, want %d", len(d2.Added), gad.N)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewInsertionGadget(0); err == nil {
		t.Fatalf("n=0 accepted")
	}
}
