// Package reduction makes the paper's proof machinery executable: the
// ∆-reduction (f, f_i, f_o) from SSRP to RPQ used in the proof of Theorem 1
// (unboundedness of RPQ under unit edge deletions), and the two-chain
// gadget illustrating why no bounded incremental algorithm can exist under
// insertions.
//
// A ∆-reduction maps instances, input updates and output updates between
// two query classes in polynomial time in |ΔG| + |ΔO| and |Q| (Section 3).
// By Lemma 2, a bounded incremental algorithm for the target class would
// induce one for the source class; since SSRP is unbounded under deletions,
// so is RPQ. The tests of this package machine-check the commuting square
// on random instances.
package reduction

import (
	"fmt"

	"incgraph/internal/graph"
	"incgraph/internal/rex"
	"incgraph/internal/rpq"
)

// Alpha1 and Alpha2 are the two labels of the constructed RPQ instance:
// the source node is relabeled Alpha1, every other node Alpha2.
const (
	Alpha1 = "alpha1"
	Alpha2 = "alpha2"
)

// SSRPInstance is an instance of the single-source reachability problem.
type SSRPInstance struct {
	G   *graph.Graph
	Src graph.NodeID
}

// RPQInstance is an instance of the regular path query problem.
type RPQInstance struct {
	G *graph.Graph
	Q *rex.Ast
}

// F is the instance mapping f: it copies the graph, relabels the source
// α1 and every other node α2, and fixes Q = α1·(α2)*. Then v is reachable
// from src in G1 iff (src, v) is a match of Q in G2 — for v = src via the
// single-label path α1, for v ≠ src because every path from src is labeled
// α1 α2 … α2.
func F(in SSRPInstance) (RPQInstance, error) {
	if !in.G.HasNode(in.Src) {
		return RPQInstance{}, fmt.Errorf("reduction: source %d missing", in.Src)
	}
	g2 := graph.New()
	in.G.Nodes(func(v graph.NodeID, _ string) bool {
		if v == in.Src {
			g2.AddNode(v, Alpha1)
		} else {
			g2.AddNode(v, Alpha2)
		}
		return true
	})
	in.G.Edges(func(e graph.Edge) bool {
		g2.AddEdge(e.From, e.To)
		return true
	})
	return RPQInstance{G: g2, Q: rex.MustParse("alpha1.alpha2*")}, nil
}

// Fi is the input-update mapping f_i: node identity is preserved by f, so
// an edge update of G1 maps to the same edge update of G2. Labels for
// possibly-new nodes are rewritten to α2 (the source already exists).
func Fi(u graph.Update) graph.Update {
	v := u
	v.FromLabel = Alpha2
	v.ToLabel = Alpha2
	return v
}

// Fo is the output-update mapping f_o: a removed RPQ match (src, v) means
// r(v) flipped to false, an added one means r(v) flipped to true. Matches
// with a different source cannot occur (only the α1 node starts a word of
// L(Q)) and are rejected.
func Fo(src graph.NodeID, d rpq.Delta) (nowReachable, nowUnreachable []graph.NodeID, err error) {
	for _, p := range d.Added {
		if p.Src != src {
			return nil, nil, fmt.Errorf("reduction: unexpected match source %d", p.Src)
		}
		nowReachable = append(nowReachable, p.Dst)
	}
	for _, p := range d.Removed {
		if p.Src != src {
			return nil, nil, fmt.Errorf("reduction: unexpected match source %d", p.Src)
		}
		nowUnreachable = append(nowUnreachable, p.Dst)
	}
	return nowReachable, nowUnreachable, nil
}

// InsertionGadget builds the two-chain instance that drives the paper's
// insertion-unboundedness arguments (the shape of Fig. 9): a chain of n
// α1-nodes (IDs 0..n-1), a chain of n α2-nodes (IDs 100n..100n+n-1), and an
// α3 sink (ID 999999), with query α1·α1*·α2·α2*·α3.
//
// Inserting either BridgeAB (last α1 → first α2) or BridgeBC (last α2 →
// sink) alone changes nothing; inserting both makes every α1-node a match
// source: |ΔG| = 1 with |ΔO| = n, while detecting it requires traversing
// Ω(n) nodes between the two update sites — the contradiction at the heart
// of the proof.
type InsertionGadget struct {
	G        *graph.Graph
	Q        *rex.Ast
	BridgeAB graph.Update
	BridgeBC graph.Update
	N        int
}

// NewInsertionGadget builds the gadget for chain length n ≥ 1.
func NewInsertionGadget(n int) (*InsertionGadget, error) {
	if n < 1 {
		return nil, fmt.Errorf("reduction: gadget needs n ≥ 1, got %d", n)
	}
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.NodeID(i), "alpha1")
		if i > 0 {
			g.AddEdge(graph.NodeID(i-1), graph.NodeID(i))
		}
	}
	base := graph.NodeID(100 * n)
	for i := 0; i < n; i++ {
		g.AddNode(base+graph.NodeID(i), "alpha2")
		if i > 0 {
			g.AddEdge(base+graph.NodeID(i-1), base+graph.NodeID(i))
		}
	}
	sink := graph.NodeID(999999)
	g.AddNode(sink, "alpha3")
	return &InsertionGadget{
		G:        g,
		Q:        rex.MustParse("alpha1.alpha1*.alpha2.alpha2*.alpha3"),
		BridgeAB: graph.Ins(graph.NodeID(n-1), base),
		BridgeBC: graph.Ins(base+graph.NodeID(n-1), sink),
		N:        n,
	}, nil
}
