// Package incgraph is a Go implementation of the incremental graph
// computations of Fan, Hu & Tian, "Incremental Graph Computations: Doable
// and Undoable" (SIGMOD 2017).
//
// The paper shows that the incremental problems for four common graph query
// classes — regular path queries (RPQ), strongly connected components
// (SCC), keyword search (KWS) and subgraph isomorphism (ISO) — are
// unbounded: no incremental algorithm can run in time polynomial in the
// size of the changes alone. It then shows the situation is not hopeless,
// via two weaker-but-practical guarantees, and this library implements all
// of the corresponding algorithms:
//
//   - KWS and ISO are localizable: IncKWS and IncISO touch only the
//     d_Q-neighborhood of the updated edges (Section 4).
//   - RPQ and SCC are relatively bounded: IncRPQ and IncSCC touch only the
//     affected area AFF of their batch algorithms RPQ_NFA and Tarjan
//     (Section 5).
//
// # Performance substrate
//
// internal/graph is built for the hot paths of the incremental engines:
//
//   - Node labels are interned process-wide into uint32 LabelIDs
//     (InternLabel / LabelIDOf / LabelOf) and every graph maintains an
//     inverted label→sorted-nodes index, so NodesWithLabel is an index
//     lookup, not an O(|V|) scan, and the VF2/KWS/RPQ inner loops compare
//     integer IDs instead of strings. Invariant: relabeling a node
//     (AddNode on an existing ID) updates the inverted index atomically
//     with the label.
//   - The node space is sharded: nodes hash into a power-of-two number of
//     partitions (Graph.SetShards, default sized to the core count), each
//     owning its slice of the node table, its dense-slot allocator, and
//     the adjacency of its nodes, with cross-shard edges recorded on both
//     endpoint shards. Large batches then apply shard-parallel inside
//     ApplyBatch: phase 1 hands each shard's owned effects to a worker,
//     phase 2 merges label-index and edge-count deltas serially in shard
//     order, so the result is byte-identical to a serial application.
//     Per-shard iteration hooks (ShardNodes, ShardNodesSorted,
//     NodesSortedParallel, Batch.TouchedShards) let the engines collect
//     and partition work along the same boundaries.
//   - Answers that are expensive to materialize but stable between
//     updates — Graph.EdgesSorted, KWSIndex.MatchRoots,
//     RPQEngine.Matches, ISOIndex.Matches — are memoized against the
//     graph's mutation generation (Graph.Generation): repeated reads
//     between updates are O(1), and any mutation implicitly invalidates
//     them. The returned slices are shared; treat them as read-only.
//   - Adjacency is hybrid: sorted []NodeID slices for low-degree nodes,
//     promoted to hash sets past a degree threshold (with hysteresis on
//     the way back down). Iteration is a cache-friendly linear scan and
//     SuccessorsSorted returns the storage itself — allocation-free, but
//     borrowed: valid only until the next mutation of that node.
//   - The traversal kernels (BFSFrom, ReverseBFSFrom, ForEachWithin,
//     Reaches, UndirectedComponents) run on buffers from a lock-free
//     worker-keyed scratch pool: an epoch-stamped visited array over dense
//     node slots plus reusable queues, so a warm graph traverses without
//     allocating, and concurrent or nested traversals each check out their
//     own buffer.
//
// # Concurrency and parallelism
//
// The engine is multi-core end to end, built on one contract: mutating a
// graph (AddNode, AddEdge, Apply, ...) requires exclusive access, while
// between mutations any number of goroutines may read and traverse it
// concurrently once Graph.PrepareConcurrentReads has run after the last
// mutation. The KWS/RPQ/ISO engines call it themselves whenever
// Parallelism() > 1; after hand-rolled mutations, at Parallelism() == 1,
// or behind the sequential SCC engine, call it yourself before sharing
// reads.
//
// On top of that split, the batch builds fan out — NewKWS per keyword,
// NewRPQ per source node, NewISO/FindMatches over partitioned VF2 candidate
// seeds — and the incremental Apply methods of KWS, RPQ and ISO apply ΔG
// through the shard-parallel ApplyBatch, then partition their repair work
// (affected keywords, affected sources, anchored insertions) across a
// worker pool. Per-worker results merge deterministically, so answers and
// deltas are byte-identical to a sequential run at any worker or shard
// count.
//
// KWS and ISO additionally route each batch through a cost model
// (internal/cost): when the predicted affected area makes the incremental
// repair costlier than the batch algorithm — the regime past the paper's
// incremental/batch crossover — Apply falls back to applying ΔG and
// recomputing from scratch, diffing the match sets for the exact same
// Delta. The decision is a pure function of graph and batch statistics,
// never of worker or shard count.
//
// Graph.SetParallelism(n) bounds the worker pool; the default is
// runtime.GOMAXPROCS(0), and n = 1 forces fully sequential execution.
// Clones inherit the setting, so configuring the base graph configures
// every engine built on it.
//
// # Durability
//
// The maintained state survives restarts (internal/store, surfaced here
// as Durable):
//
//   - Snapshots. WriteSnapshot serializes the graph in a versioned binary
//     format, one independently-encoded segment per shard behind a
//     manifest header (shard count, generation, label table, per-segment
//     CRC-32). Segments encode and load in parallel, and a load restores
//     the graph exactly — node set, labels, adjacency, dense-slot
//     assignment, mutation generation — so engines built on a loaded
//     graph behave byte-identically to engines built on the original.
//     The format is versioned by a magic+version header; readers reject
//     unknown versions rather than guessing.
//   - Write-ahead log. A Durable validates each batch ΔG, appends it to a
//     length+CRC-framed log, and only then applies it to the graph and the
//     attached engines. The fsync policy is explicit: SyncAlways (the
//     default) makes every acknowledged batch survive power failure;
//     SyncNone trades bounded loss for append throughput.
//   - Recovery. OpenDurable loads the snapshot, the caller rebuilds its
//     engines on clones of it, and Recover replays the WAL's valid record
//     prefix through the engines' normal Apply path — repairs run exactly
//     as they did the first time, so every answer (Maintained.WriteAnswer)
//     is byte-identical to the uninterrupted run, at any worker or shard
//     count. A torn or corrupt WAL tail — the signature of a crash mid-
//     append — is truncated, never fatal.
//   - Checkpoints. Checkpoint folds the log into a fresh snapshot under a
//     new epoch and commits the pair via an atomically-renamed manifest;
//     a crash at any instant leaves either the old pair or the new pair
//     fully intact.
//
// cmd/incgraphd is the long-lived server built on this subsystem: it
// ingests "+/-" update streams over a line protocol, serves rpq/kws/scc/
// iso answers from the generation-stamped caches under the read-parallel
// contract, and checkpoints on demand or past a WAL-size threshold. The
// CLI tools accept .snap files anywhere a text graph is accepted
// (LoadGraphFile sniffs the format).
//
// # Distribution
//
// The substrate outgrows one process along the boundary it was sharded
// on (internal/cluster, surfaced here as Cluster/ClusterWorker):
//
//   - Coordinator/worker contract. Shard worker processes each hold
//     authoritative replicas of a subset of the graph's shards — node
//     records, slot allocators, adjacency, nothing graph-global — behind
//     a length+CRC-framed RPC protocol (the WAL's framing). The
//     coordinator keeps the authoritative full graph: batches are
//     validated and planned there, the engines and the Durable live
//     there, and shard placement/rebalancing ship the snapshot's
//     per-shard segments (the wire format the store was designed around).
//   - Determinism. A distributed Apply is ApplyBatch's existing two-phase
//     protocol stretched over the network: phase 1 ships each shard's
//     slice of the validated plan to its owning worker, in parallel;
//     phase 2 — the commit callback — merges deltas in shard order
//     locally, cross-checked against the plan. The result (graph bytes,
//     engine deltas, canonical answers) is byte-identical to the
//     single-process application; the differential tests pin
//     cluster(workers=2) ≡ single-process for all four query classes,
//     mid-stream rebalance included.
//   - Failure. A batch commits only after every involved worker
//     acknowledged phase 1. A worker failure mid-batch aborts the commit
//     atomically — nothing is logged or applied locally — and every shard
//     the batch planned to touch is re-shipped from the authoritative
//     segments before its next use; a restarted worker is reattached and
//     rebuilt the same way. Batches whose TouchedShards sets are disjoint
//     are routed concurrently.
//   - One write path. Durable.Commit(b, ApplyOptions{...}) is the single
//     apply entry point, local and distributed: the zero ApplyOptions is
//     the plain durable apply, Via routes the batch through a Cluster,
//     Deadline carries the serving layer's per-op budget, and the
//     Log/Exclusive hooks splice in the serving tier's degradation and
//     read-exclusion policies. The older Durable.Apply/ApplyVia and
//     Cluster construction variants remain as deprecated wrappers over
//     this path.
//   - Pipelined commit. The distributed hop prices close to the local
//     one (the benchcmp gate pins the 2-worker/single-process geomean)
//     because the protocol ships the already-validated plan zero-copy —
//     effects encode straight off the planner's pooled state, and
//     interned label tables travel once per session as deltas — overlaps
//     the WAL append with the phase-1 round trips (log order still equals
//     commit order, so the WAL bytes are identical to the serial path),
//     and coalesces concurrent batches' shares into one frame per worker
//     (group commit). WithSerialLog and WithNoCoalesce revert each leg
//     for differential testing; the pipelined-vs-serial tests pin
//     byte-identical answers and WAL files across all combinations.
//
// # High availability
//
// Three layers make the cluster survive the loss of any process
// (NewCluster options, ClusterHub/ClusterStandby, ClusterReplStates):
//
//   - Log shipping. With ClusterOptions.Repl set to ReplAsync or
//     ReplQuorum, the coordinator streams every committed batch's WAL
//     record — the same (seq, gen, ΔG) payload its own log framed — to the
//     workers owning the touched shards, on one ordered queue per worker.
//     Each worker keeps per-shard replica logs (file-backed via
//     ClusterWorker.SetLogDir) whose per-shard sequence chains detect any
//     missed record; a gap heals by parcel resync from the authoritative
//     segments, never by guessing. ReplAsync acknowledges on enqueue;
//     ReplQuorum waits for a majority of the involved workers' clean
//     appends. Replication never fails a commit — the batch was already
//     durable at the coordinator — a shortfall only marks it degraded.
//   - Standby failover and fencing. A ClusterHub beside the primary feeds
//     committed records to ClusterStandby processes (snapshot handshake,
//     then a tail whose heartbeats double as the primary's lease). Every
//     coordinator session carries a fencing term; workers remember the
//     highest term seen and reject mutating requests from any older
//     session. On lease expiry — or an operator's explicit promote — the
//     standby's owner attaches a coordinator at term+1 over the same
//     workers, which re-places every shard and fences the deposed
//     coordinator: its late commits fail with "fenced" instead of forking
//     history. The differential tests pin that a SIGKILL'd primary plus a
//     promoted standby produce answers, snapshot bytes, and worker
//     replicas identical to the uninterrupted run.
//   - Replica reads and degradation. ClusterReplStates asks any worker —
//     no coordinator session needed — which generation each of its shards
//     has proven current, the currency check for serving reads from
//     replicas. The serving tier degrades monotonically: a standby with a
//     live feed serves reads that are current through the last fed commit;
//     a standby that outlived its primary keeps serving reads from its
//     last durable generation (never a write); a replica that diverged
//     from a live primary redirects reads to the primary rather than
//     answer stale. Writes are only ever accepted at the single fenced
//     primary.
//   - Anti-entropy scrubbing. Gap detection only catches a replica that
//     missed a record; a replica rotted by anything that preserves the
//     sequence chain — a bit flip in a replica log file, silently
//     diverged in-memory state — would stay wrong until a commit
//     happened to abort on it. The coordinator's background scrubber
//     (Cluster.Scrub, Cluster.StartScrubber) walks shards round-robin,
//     one per interval: it compares the worker's parcel bytes against the
//     authoritative segment and asks the worker to re-scan its replica
//     log file against what it acknowledged, and re-places any shard
//     that fails either check — the same heal a gap triggers, driven by
//     verification instead of luck. Busy shards are skipped, not waited
//     for; passes, mismatches, and heals are lifetime counters.
//   - Fault drills. FaultScript wraps any cluster connection in a seeded
//     frame-level shim (drop/delay/duplicate/sever, matched by direction,
//     frame index, and message type) with an event log that is
//     reproducible run-to-run — the chaos drills in CI assert the same
//     faults fire at the same frames twice in a row. FaultFS is its
//     storage counterpart: a seeded filesystem shim under the store's
//     write path (DurableOptions.FS) that fails chosen syscalls — EIO,
//     ENOSPC, short and torn writes, fsyncs that fail or lie, crash and
//     power-loss at write K — with the same determinism pin, so disk
//     drills replay byte-for-byte.
//
// cmd/incgraphd exposes all of this operationally: "incgraphd worker"
// runs a shard worker, the serving daemon attaches workers with
// -cluster addr,addr or -cluster-spawn N (plus -repl/-term/-hub for
// replication, fencing, and the standby feed), and "incgraphd standby"
// runs a warm replica that serves reads while tailing and becomes the
// primary on "promote". "stat" reports worker health, replication
// counters, and the fencing term alongside the accept/commit error
// counters; "health" is the cheap role/liveness probe.
//
// # Overload and admission control
//
// The HA layer bounds what failure can do; the admission layer bounds
// what load can do. The serving daemon promises the same kind of
// monotonic degradation matrix under overload that the replica tier
// promises under process loss:
//
//   - A healthy daemon under nominal load answers everything; overload
//     protection is invisible (the gates' slots outnumber the load).
//   - Under a commit storm, commits queue up to a bounded depth and then
//     shed with an explicit "err overloaded ...; retry" reply — admitted
//     throughput plateaus at the gate's capacity instead of collapsing,
//     the p99 of admitted ops stays bounded by the per-op budget, and a
//     shed commit keeps its staged batch so the retry is one line.
//     Reads keep answering from the maintained engines the whole time:
//     the WAL fsync and checkpoint I/O happen outside the graph lock, so
//     a slow disk backs up writers (who shed at the gate), never readers.
//   - Under a read storm the read gate sheds the excess the same way;
//     commits proceed unimpeded on their own gate.
//   - Slow, idle, and oversized-line clients are cut on per-connection
//     deadlines — a byte-at-a-time trickle is cut exactly like an idle
//     connection, an over-limit line gets "err line too long" before the
//     close — and past -max-conns new connections are shed at accept.
//     A misbehaving client never degrades a healthy one.
//   - The disk has its own column in the matrix: healthy → retrying →
//     read-only → healed. A failed WAL append is retried with capped
//     backoff (healthy commits never notice a transient flake); a disk
//     that stays dead flips the daemon into advertised read-only mode,
//     where commits shed with "err disk degraded; read-only" — keeping
//     their staged batch, like any shed — while reads keep answering
//     from the maintained engines and "health" says disk=read-only. A
//     background probe flips it back the moment a WAL fsync succeeds
//     again; recovery needs no operator and no restart, and "acked ⇒
//     durable" holds across the whole cycle — a commit acknowledged
//     before, during, or after the incident is on disk, and a shed one
//     left no trace.
//   - Nothing is silent: every shed, queue timeout, idle cut, oversized
//     line, and refused connection is a counter in "stat".
//
// Admitted is admitted: whatever was acked under the storm is exactly
// what the graph holds after it — byte-identical to a serial replay of
// the acked commits, the same currency crash recovery is held to.
// cmd/loadgen replays YAML-described scenarios (read-heavy, ingest-heavy,
// mixed, hot-key skew, slow clients, a 2x overload spike) against any of
// the daemon's modes and asserts exactly this contract plus latency
// bounds; CI runs a scaled-down mixed scenario every push.
//
// The facade in this package re-exports the library's types and
// constructors; the implementations live in internal packages:
//
//	internal/graph      directed labeled graphs and the update model
//	internal/kws        keyword search: batch build + IncKWS±/IncKWS
//	internal/rex        regular path expressions and the Glushkov NFA
//	internal/rpq        RPQ_NFA and IncRPQ over pmark_e markings
//	internal/scc        Tarjan, contracted graph, ranks, IncSCC±/IncSCC
//	internal/iso        VF2 and the localizable IncISO
//	internal/reach      SSRP (the unboundedness anchor)
//	internal/reduction  executable ∆-reductions from the Theorem 1 proofs
//	internal/gen        dataset simulators, update and query generators
//	internal/bench      the harness that regenerates the paper's figures
//	internal/store      per-shard snapshots, the WAL, checkpoint/recover
//	internal/cluster    shard workers, framed RPC, the distributed apply,
//	                    log shipping, standby failover, fault injection
//
// A minimal session:
//
//	g := incgraph.NewGraph()
//	g.AddNode(1, "paper")
//	g.AddNode(2, "author")
//	g.AddEdge(1, 2)
//
//	e, _ := incgraph.NewRPQ(g, "paper.author")
//	_ = e.Matches() // [(1,2)]
//
//	delta, _ := e.Apply(incgraph.Batch{incgraph.Del(1, 2)})
//	_ = delta.Removed // [(1,2)]
//
// See README.md for the architecture overview and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package incgraph
